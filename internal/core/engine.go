package core

import (
	"math"
	"time"
)

// policy describes the behaviour of a single-cache, single-replacement
// strategy (§3.1, §3.2 and the "Single Cache and Single Replacement
// Method" family of §3.3). One engine implementation covers GD*, SUB,
// SG1, SG2, SR and the classic baselines; they differ only in the value
// function and in which placement opportunities they use.
type policy struct {
	name string
	// eval computes the replacement value of an entry given the engine
	// state (inflation L, β, access sequence).
	eval func(g *engine, e *Entry) float64
	// pushEnabled stores matched pages at push time.
	pushEnabled bool
	// cacheOnMiss attempts storage at access-time misses.
	cacheOnMiss bool
	// gatedAdmission admits a page only when the candidate set (entries
	// with strictly smaller value) frees enough space; otherwise the
	// page is forwarded without caching. Without gating the engine
	// evicts unconditionally until the page fits (classic GD*).
	gatedAdmission bool
	// updateOnHit re-evaluates the entry on every hit.
	updateOnHit bool
	// tracksL maintains the GD* inflation value L on evictions.
	tracksL bool
}

// engine is the shared implementation of all single-cache strategies.
type engine struct {
	policy
	store *Store
	l     float64
	beta  float64
	seq   uint64
	stats OpStats

	// metrics, when non-nil, mirrors stats into a telemetry registry
	// and samples op/eval latencies; flushed tracks what was mirrored.
	metrics *StrategyMetrics
	flushed OpStats
	sampled bool // current op measures latency
}

var _ Strategy = (*engine)(nil)

func newEngine(p policy, params Params) (*engine, error) {
	st, err := NewStore(params.Capacity)
	if err != nil {
		return nil, err
	}
	return &engine{policy: p, store: st, beta: params.Beta, metrics: params.Metrics}, nil
}

func (g *engine) Name() string    { return g.name }
func (g *engine) Used() int64     { return g.store.Used() }
func (g *engine) Capacity() int64 { return g.store.Capacity() }
func (g *engine) Len() int        { return g.store.Len() }

// Push implements Strategy. The wrapper keeps the uninstrumented and
// unsampled paths down to two predictable branches.
func (g *engine) Push(p PageMeta, version, subs int) bool {
	m := g.metrics
	if m == nil || !sampleOp(g.seq) {
		return g.push(p, version, subs)
	}
	t0 := time.Now()
	g.sampled = true
	stored := g.push(p, version, subs)
	g.sampled = false
	m.pushDone(t0, &g.flushed, &g.stats)
	return stored
}

func (g *engine) push(p PageMeta, version, subs int) bool {
	if !g.pushEnabled {
		// Access-time-only schemes do not participate in content
		// pushing at all; resident copies stay stale until a request
		// refetches them.
		return false
	}
	g.seq++
	if e, ok := g.store.Get(p.ID); ok {
		// A new version of a cached page refreshes the copy in place.
		if version > e.Version {
			e.Version = version
		}
		e.Subs = subs
		if g.updateOnHit {
			e.Value = g.eval(g, e)
			g.store.Fix(e)
		}
		return true
	}
	g.stats.PushOffers++
	if g.admit(p, version, subs, 0) {
		g.stats.PushStores++
		return true
	}
	return false
}

// Request implements Strategy; see Push for the instrumentation shape.
func (g *engine) Request(p PageMeta, version, subs int) (hit, stored bool) {
	m := g.metrics
	if m == nil || !sampleOp(g.seq) {
		return g.request(p, version, subs)
	}
	t0 := time.Now()
	g.sampled = true
	hit, stored = g.request(p, version, subs)
	g.sampled = false
	m.requestDone(t0, &g.flushed, &g.stats)
	return hit, stored
}

func (g *engine) request(p PageMeta, version, subs int) (hit, stored bool) {
	g.seq++
	g.stats.Requests++
	if e, ok := g.store.Get(p.ID); ok {
		fresh := e.Version >= version
		if fresh {
			g.stats.Hits++
		} else {
			g.stats.StaleRefreshes++
		}
		if version > e.Version {
			// Stale copy: the fetch refreshes it in place.
			e.Version = version
		}
		e.Refs++
		e.Subs = subs
		e.LastAccessSeq = g.seq
		if g.updateOnHit {
			e.Value = g.eval(g, e)
			g.store.Fix(e)
		}
		return fresh, true
	}
	if !g.cacheOnMiss {
		return false, false
	}
	if g.admit(p, version, subs, 1) {
		g.stats.AccessAdmits++
		return false, true
	}
	g.stats.AccessRejects++
	return false, false
}

// admit runs the replacement algorithm for a page not currently cached.
// refs is the initial access count (1 at access time, 0 at push time).
func (g *engine) admit(p PageMeta, version, subs, refs int) bool {
	if p.Size > g.store.Capacity() {
		return false
	}
	e := &Entry{
		ID:            p.ID,
		Version:       version,
		Size:          p.Size,
		Cost:          p.Cost,
		Refs:          refs,
		Subs:          subs,
		LastAccessSeq: g.seq,
	}
	limit := math.Inf(1)
	if g.gatedAdmission {
		if g.sampled { // sampled implies g.metrics != nil
			t0 := time.Now()
			limit = g.eval(g, e)
			g.metrics.evalDone(t0)
		} else {
			limit = g.eval(g, e)
		}
		if !g.store.CanAdmit(p.Size, limit) {
			return false
		}
	}
	evicted, ok := g.store.EvictFor(p.Size, limit)
	for _, ev := range evicted {
		if g.tracksL {
			g.l = ev.Value
		}
		g.stats.Evictions++
		g.stats.EvictedBytes += ev.Size
	}
	if !ok {
		// Unreachable when CanAdmit passed; kept as a safety net for
		// ungated policies with pathological sizes.
		return false
	}
	e.Value = g.eval(g, e)
	if err := g.store.Add(e); err != nil {
		return false
	}
	return true
}

// invPow returns base^(1/beta), the exponentiation of eq. 1.
func invPow(base, beta float64) float64 {
	if base <= 0 {
		return 0
	}
	return math.Pow(base, 1/beta)
}

// NewGDStar builds the paper's baseline: Greedy-Dual* (eq. 1), an
// access-time-only scheme valuing pages by access frequency and recency,
// fetch cost and size.
func NewGDStar(params Params) (Strategy, error) {
	if err := params.validateBeta(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "GD*",
		eval: func(g *engine, e *Entry) float64 {
			return g.l + invPow(float64(e.Refs)*e.Cost/float64(e.Size), g.beta)
		},
		cacheOnMiss: true,
		updateOnHit: true,
		tracksL:     true,
	}, params)
}

// NewSUB builds the push-time-only scheme of §3.2: pages are valued by
// subscription count (eq. 2), stored only at push time, and forwarded
// without caching on access misses.
func NewSUB(params Params) (Strategy, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "SUB",
		eval: func(g *engine, e *Entry) float64 {
			return float64(e.Subs) * e.Cost / float64(e.Size)
		},
		pushEnabled:    true,
		gatedAdmission: true,
	}, params)
}

// NewSG1 builds Subscription-GD*-1 (eq. 3): the GD* framework with the
// frequency factor replaced by subscriptions + accesses, placing at both
// push and access time in a single cache.
func NewSG1(params Params) (Strategy, error) {
	if err := params.validateBeta(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "SG1",
		eval: func(g *engine, e *Entry) float64 {
			f := float64(e.Subs + e.Refs)
			return g.l + invPow(f*e.Cost/float64(e.Size), g.beta)
		},
		pushEnabled:    true,
		cacheOnMiss:    true,
		gatedAdmission: true,
		updateOnHit:    true,
		tracksL:        true,
	}, params)
}

// NewSG2 builds Subscription-GD*-2 (eq. 4): like SG1 but with frequency
// subscriptions − accesses, the estimated number of future references
// (clamped at zero once a page has been read more often than subscribed).
func NewSG2(params Params) (Strategy, error) {
	if err := params.validateBeta(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "SG2",
		eval: func(g *engine, e *Entry) float64 {
			f := float64(e.Subs - e.Refs)
			if f < 0 {
				f = 0
			}
			return g.l + invPow(f*e.Cost/float64(e.Size), g.beta)
		},
		pushEnabled:    true,
		cacheOnMiss:    true,
		gatedAdmission: true,
		updateOnHit:    true,
		tracksL:        true,
	}, params)
}

// NewSR builds the subscription-request scheme (eq. 5): pure future-
// frequency prediction (subscriptions − accesses) scaled by cost and
// size, with no recency inflation and no β.
func NewSR(params Params) (Strategy, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "SR",
		eval: func(g *engine, e *Entry) float64 {
			f := float64(e.Subs - e.Refs)
			if f < 0 {
				f = 0
			}
			return f * e.Cost / float64(e.Size)
		},
		pushEnabled:    true,
		cacheOnMiss:    true,
		gatedAdmission: true,
		updateOnHit:    true,
	}, params)
}

// NewLRU builds a classic least-recently-used cache (access-time only).
func NewLRU(params Params) (Strategy, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "LRU",
		eval: func(g *engine, e *Entry) float64 {
			return float64(g.seq)
		},
		cacheOnMiss: true,
		updateOnHit: true,
	}, params)
}

// NewGDS builds GreedyDual-Size (Cao & Irani): value = L + cost/size,
// access-time only.
func NewGDS(params Params) (Strategy, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "GDS",
		eval: func(g *engine, e *Entry) float64 {
			return g.l + e.Cost/float64(e.Size)
		},
		cacheOnMiss: true,
		updateOnHit: true,
		tracksL:     true,
	}, params)
}

// NewLFUDA builds LFU with dynamic aging: value = L + refs, access-time
// only, In-Cache LFU counting.
func NewLFUDA(params Params) (Strategy, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return newEngine(policy{
		name: "LFU-DA",
		eval: func(g *engine, e *Entry) float64 {
			return g.l + float64(e.Refs)
		},
		cacheOnMiss: true,
		updateOnHit: true,
		tracksL:     true,
	}, params)
}
