package core

import (
	"math"
	"testing"
)

func dcap(t *testing.T, s Strategy) *dualCache {
	t.Helper()
	d, ok := s.(*dualCache)
	if !ok {
		t.Fatalf("expected *dualCache, got %T", s)
	}
	return d
}

func TestDCFPPartitionIsFixed(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	if d.pc.Capacity() != 100 || d.ac.Capacity() != 100 {
		t.Fatalf("initial partition pc=%d ac=%d, want 100/100", d.pc.Capacity(), d.ac.Capacity())
	}
	// Drive traffic; the partition must never change for DC-FP.
	for i := 0; i < 500; i++ {
		s.Push(page(i%20, 30), 0, 1+i%5)
		s.Request(page(i%25, 30), 0, 1+i%5)
		if d.pc.Capacity() != 100 || d.ac.Capacity() != 100 {
			t.Fatalf("DC-FP partition moved at step %d", i)
		}
	}
}

func TestDCFPPushGoesToPC(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	if !s.Push(page(1, 50), 0, 3) {
		t.Fatal("push should store in PC")
	}
	if _, ok := d.pc.Get(1); !ok {
		t.Error("pushed page should be in PC")
	}
	if _, ok := d.ac.Get(1); ok {
		t.Error("pushed page should not be in AC")
	}
}

func TestDCFPFirstAccessMovesToAC(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	s.Push(page(1, 50), 0, 3)
	hit, stored := s.Request(page(1, 50), 0, 3)
	if !hit || !stored {
		t.Fatalf("PC page access: hit=%v stored=%v", hit, stored)
	}
	if _, ok := d.pc.Get(1); ok {
		t.Error("page should have left PC")
	}
	if _, ok := d.ac.Get(1); !ok {
		t.Error("page should now be in AC")
	}
}

func TestDCFPMoveTriggersACReplacement(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	// Fill AC via misses.
	s.Request(page(10, 60), 0, 0)
	s.Request(page(11, 40), 0, 0)
	if d.ac.Used() != 100 {
		t.Fatalf("AC used = %d, want 100", d.ac.Used())
	}
	// Push then access page 1: the move must evict from AC.
	s.Push(page(1, 80), 0, 3)
	s.Request(page(1, 80), 0, 3)
	if _, ok := d.ac.Get(1); !ok {
		t.Fatal("moved page should be in AC")
	}
	if d.ac.Used() > d.ac.Capacity() {
		t.Fatalf("AC overfull: %d > %d", d.ac.Used(), d.ac.Capacity())
	}
}

func TestDCFPMissUsesAC(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	hit, stored := s.Request(page(1, 50), 0, 0)
	if hit || !stored {
		t.Fatalf("miss should store in AC: hit=%v stored=%v", hit, stored)
	}
	if _, ok := d.ac.Get(1); !ok {
		t.Error("missed page should be cached in AC")
	}
	if _, ok := d.pc.Get(1); ok {
		t.Error("missed page must not enter PC")
	}
}

func TestDCAPLocatingRelabelsStorage(t *testing.T) {
	s := mustStrategy(t, NewDCAP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	s.Push(page(1, 50), 0, 3)
	pcBefore, acBefore := d.pc.Capacity(), d.ac.Capacity()
	s.Request(page(1, 50), 0, 3)
	if d.pc.Capacity() != pcBefore-50 || d.ac.Capacity() != acBefore+50 {
		t.Errorf("capacities after relabel: pc=%d ac=%d, want %d/%d",
			d.pc.Capacity(), d.ac.Capacity(), pcBefore-50, acBefore+50)
	}
	if _, ok := d.ac.Get(1); !ok {
		t.Error("page should be AC-labeled after access")
	}
	if d.pc.Capacity()+d.ac.Capacity() != 200 {
		t.Error("total capacity must be conserved")
	}
}

func TestDCAPPlacingReclaimsIdleACStorage(t *testing.T) {
	s := mustStrategy(t, NewDCAP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	// Shrink PC to 40 by pushing a page and accessing it (relabel).
	s.Push(page(1, 60), 0, 2)
	s.Request(page(1, 60), 0, 2) // pc cap 40, ac cap 160, page 1 in AC
	// Fill AC and force a replacement so lastACRepl advances; page 1 is
	// not referenced afterwards.
	s.Request(page(10, 100), 0, 0) // ac used 160
	s.Request(page(11, 40), 0, 0)  // triggers AC eviction
	if d.lastACRepl == 0 {
		t.Fatal("scenario should have triggered an AC replacement")
	}
	// Now a push too large for PC arrives; page 1 (idle since the AC
	// replacement) is reclaimable.
	if stored := s.Push(page(4, 90), 0, 9); !stored {
		t.Fatal("DC-AP should reclaim idle AC storage for the push")
	}
	if _, ok := d.pc.Get(4); !ok {
		t.Error("reclaimed push should live in PC")
	}
	if _, ok := d.ac.Get(1); ok {
		t.Error("idle page 1 should have been reclaimed from AC")
	}
	if d.pc.Capacity()+d.ac.Capacity() != 200 {
		t.Error("total capacity must be conserved after reclamation")
	}
}

func TestDCLAPBoundsRespected(t *testing.T) {
	s := mustStrategy(t, NewDCLAP, Params{Capacity: 400, Beta: 2})
	d := dcap(t, s)
	for i := 0; i < 2000; i++ {
		id := (i * 7) % 31
		size := int64(20 + (i*13)%60)
		switch i % 3 {
		case 0:
			s.Push(page(id, size), i/700, 1+(i%6))
		default:
			s.Request(page(id, size), i/700, 1+(i%6))
		}
		frac := d.PCFraction()
		if frac < DefaultDCLAPLower-1e-9 || frac > DefaultDCLAPUpper+1e-9 {
			t.Fatalf("step %d: PC fraction %g outside [%g, %g]", i, frac, DefaultDCLAPLower, DefaultDCLAPUpper)
		}
		if d.pc.Capacity()+d.ac.Capacity() != 400 {
			t.Fatalf("step %d: capacity not conserved", i)
		}
	}
}

func TestDCAPFractionUnbounded(t *testing.T) {
	// DC-AP may drive the PC fraction to 0 (locating) — verify it can
	// leave the LAP band.
	s := mustStrategy(t, NewDCAP, Params{Capacity: 200, Beta: 2})
	d := dcap(t, s)
	s.Push(page(1, 100), 0, 2)
	s.Request(page(1, 100), 0, 2)
	if d.PCFraction() != 0 {
		t.Errorf("DC-AP PC fraction = %g, want 0", d.PCFraction())
	}
}

func TestNewDCLAPBoundedValidation(t *testing.T) {
	if _, err := NewDCLAPBounded(Params{Capacity: 100, Beta: 2}, -0.1, 0.5); err == nil {
		t.Error("negative lower bound should error")
	}
	if _, err := NewDCLAPBounded(Params{Capacity: 100, Beta: 2}, 0.5, 1.1); err == nil {
		t.Error("upper bound above 1 should error")
	}
	if _, err := NewDCLAPBounded(Params{Capacity: 100, Beta: 2}, 0.8, 0.2); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := NewDCLAPBounded(Params{Capacity: 100, Beta: 2}, 0.1, 0.9); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func TestDualCacheCapacityConservation(t *testing.T) {
	for _, ctor := range []struct {
		name string
		f    func(Params) (Strategy, error)
	}{
		{"DC-FP", NewDCFP}, {"DC-AP", NewDCAP}, {"DC-LAP", NewDCLAP},
	} {
		ctor := ctor
		t.Run(ctor.name, func(t *testing.T) {
			s := mustStrategy(t, ctor.f, Params{Capacity: 777, Beta: 2})
			d := dcap(t, s)
			for i := 0; i < 5000; i++ {
				id := (i * 11) % 43
				size := int64(5 + (i*19)%120)
				if i%2 == 0 {
					s.Push(page(id, size), i/900, (i*3)%8)
				} else {
					s.Request(page(id, size), i/900, (i*3)%8)
				}
				if d.pc.Capacity()+d.ac.Capacity() != 777 {
					t.Fatalf("step %d: pc %d + ac %d != 777", i, d.pc.Capacity(), d.ac.Capacity())
				}
				if d.pc.Used() > d.pc.Capacity() || d.ac.Used() > d.ac.Capacity() {
					t.Fatalf("step %d: partition overflow pc %d/%d ac %d/%d",
						i, d.pc.Used(), d.pc.Capacity(), d.ac.Used(), d.ac.Capacity())
				}
				// A page can live in at most one partition.
				dup := 0
				d.pc.Each(func(e *Entry) bool {
					if _, ok := d.ac.Get(e.ID); ok {
						dup++
					}
					return true
				})
				if dup > 0 {
					t.Fatalf("step %d: %d pages in both partitions", i, dup)
				}
			}
		})
	}
}

func TestDualCacheStaleVersionMiss(t *testing.T) {
	s := mustStrategy(t, NewDCLAP, Params{Capacity: 200, Beta: 2})
	s.Push(page(1, 50), 0, 2)
	if hit, _ := s.Request(page(1, 50), 1, 2); hit {
		t.Error("newer version must miss against stale PC copy")
	}
	if hit, _ := s.Request(page(1, 50), 1, 2); !hit {
		t.Error("refreshed copy should now hit")
	}
}

func TestDualCacheOversizedPages(t *testing.T) {
	s := mustStrategy(t, NewDCFP, Params{Capacity: 100, Beta: 2})
	if stored := s.Push(page(1, 80), 0, 5); stored {
		t.Error("push larger than PC partition should fail for DC-FP")
	}
	if _, stored := s.Request(page(2, 80), 0, 0); stored {
		t.Error("request larger than AC partition should not store")
	}
	if _, stored := s.Request(page(3, 30), 0, 0); !stored {
		t.Error("fitting request should store")
	}
}

func TestDCLAPOutperformsNothingSanity(t *testing.T) {
	// Smoke: identical stream through GD* and DC-LAP; pushed-and-then-
	// requested pages must give DC-LAP at least GD*'s hits.
	gd := mustStrategy(t, NewGDStar, Params{Capacity: 500, Beta: 2})
	dl := mustStrategy(t, NewDCLAP, Params{Capacity: 500, Beta: 2})
	gdHits, dlHits := 0, 0
	for i := 0; i < 400; i++ {
		id := (i * 3) % 40
		m := page(id, 50)
		subs := 2
		gd.Push(m, 0, subs)
		dl.Push(m, 0, subs)
		if hit, _ := gd.Request(m, 0, subs); hit {
			gdHits++
		}
		if hit, _ := dl.Request(m, 0, subs); hit {
			dlHits++
		}
	}
	if dlHits <= gdHits {
		t.Errorf("DC-LAP hits %d should exceed GD* hits %d on a push-friendly stream", dlHits, gdHits)
	}
	if math.IsNaN(float64(dlHits)) {
		t.Fatal("unreachable")
	}
}
