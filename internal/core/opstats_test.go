package core

import (
	"testing"
)

func opStats(t *testing.T, s Strategy) OpStats {
	t.Helper()
	sp, ok := s.(StatsProvider)
	if !ok {
		t.Fatalf("%s does not provide OpStats", s.Name())
	}
	return sp.OpStats()
}

func TestOpStatsCountsRequestOutcomes(t *testing.T) {
	s := mustStrategy(t, NewGDStar, Params{Capacity: 100, Beta: 2})
	s.Request(page(1, 40), 0, 0) // miss, admit
	s.Request(page(1, 40), 0, 0) // hit
	s.Request(page(1, 40), 1, 0) // stale refresh
	st := opStats(t, s)
	if st.Requests != 3 {
		t.Errorf("Requests = %d, want 3", st.Requests)
	}
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
	if st.StaleRefreshes != 1 {
		t.Errorf("StaleRefreshes = %d, want 1", st.StaleRefreshes)
	}
	if st.AccessAdmits != 1 {
		t.Errorf("AccessAdmits = %d, want 1", st.AccessAdmits)
	}
}

func TestOpStatsCountsPushesAndRejects(t *testing.T) {
	s := mustStrategy(t, NewSUB, Params{Capacity: 100})
	s.Push(page(1, 60), 0, 10) // stored
	s.Push(page(2, 60), 0, 1)  // rejected: value too low
	s.Push(page(1, 60), 1, 10) // resident refresh: not an offer
	st := opStats(t, s)
	if st.PushOffers != 2 {
		t.Errorf("PushOffers = %d, want 2", st.PushOffers)
	}
	if st.PushStores != 1 {
		t.Errorf("PushStores = %d, want 1", st.PushStores)
	}
	// SUB never caches at access time; a miss is neither admit nor
	// reject (the module does not run).
	s.Request(page(3, 10), 0, 1)
	st = opStats(t, s)
	if st.AccessAdmits != 0 || st.AccessRejects != 0 {
		t.Errorf("SUB access admission counters should stay zero: %+v", st)
	}
}

func TestOpStatsEvictionAccounting(t *testing.T) {
	s := mustStrategy(t, NewLRU, Params{Capacity: 100})
	s.Request(page(1, 60), 0, 0)
	s.Request(page(2, 60), 0, 0) // evicts page 1
	st := opStats(t, s)
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.EvictedBytes != 60 {
		t.Errorf("EvictedBytes = %d, want 60", st.EvictedBytes)
	}
}

func TestOpStatsGatedRejection(t *testing.T) {
	s := mustStrategy(t, NewSG2, Params{Capacity: 100, Beta: 2})
	s.Push(page(1, 100), 0, 50) // fills the cache with a high-value page
	// Low-value access miss cannot displace it.
	hit, stored := s.Request(page(2, 100), 0, 0)
	if hit || stored {
		t.Fatal("low-value page should be rejected")
	}
	st := opStats(t, s)
	if st.AccessRejects != 1 {
		t.Errorf("AccessRejects = %d, want 1", st.AccessRejects)
	}
	if st.Hits != 0 || st.Requests != 1 {
		t.Errorf("unexpected request counters: %+v", st)
	}
}

func TestOpStatsConsistencyUnderLoad(t *testing.T) {
	s := mustStrategy(t, NewSG1, Params{Capacity: 1000, Beta: 2})
	for i := 0; i < 3000; i++ {
		id := (i * 7) % 61
		size := int64(10 + (i*13)%120)
		if i%2 == 0 {
			s.Push(page(id, size), i/700, 1+(i%5))
		} else {
			s.Request(page(id, size), i/700, 1+(i%5))
		}
	}
	st := opStats(t, s)
	if st.Requests != 1500 {
		t.Errorf("Requests = %d, want 1500", st.Requests)
	}
	if st.Hits+st.StaleRefreshes+st.AccessAdmits+st.AccessRejects != st.Requests {
		t.Errorf("request outcome counters do not partition requests: %+v", st)
	}
	if st.PushStores > st.PushOffers {
		t.Errorf("stores exceed offers: %+v", st)
	}
	if st.EvictedBytes < st.Evictions {
		t.Errorf("evicted bytes below eviction count (pages are >=1 byte): %+v", st)
	}
}
