package core

import (
	"testing"
)

func TestDMPushUsesSubOrdering(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 100, Beta: 2})
	// Two pushed pages with different subscription values.
	s.Push(page(1, 50), 0, 1)  // subValue 0.02
	s.Push(page(2, 50), 0, 10) // subValue 0.2
	// New push, 5 subs → 0.1: only page 1 is a candidate.
	if stored := s.Push(page(3, 50), 0, 5); !stored {
		t.Fatal("push should displace page 1")
	}
	if hit, _ := s.Request(page(2, 50), 0, 10); !hit {
		t.Error("page 2 should survive the push-time replacement")
	}
	if hit, _ := s.Request(page(1, 50), 0, 1); hit {
		t.Error("page 1 should have been evicted at push time")
	}
}

func TestDMAccessUsesGDStarOrdering(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 100, Beta: 1})
	// Page 1 has huge subscription value but will face the GD* module.
	s.Push(page(1, 50), 0, 100)
	// Access page 2 repeatedly: it builds GD* value; page 1 has refs=0.
	s.Request(page(2, 50), 0, 0)
	s.Request(page(2, 50), 0, 0)
	// Miss on page 3 triggers the GD* (access-time) replacement, which
	// ignores subscription value: page 1 (refs 0) is the victim despite
	// 100 subscriptions — exactly DM's overlap problem the paper notes.
	s.Request(page(3, 50), 0, 0)
	if hit, _ := s.Request(page(2, 50), 0, 0); !hit {
		t.Error("page 2 (referenced) should survive")
	}
	if hit, _ := s.Request(page(1, 50), 0, 100); hit {
		t.Error("page 1 should have been evicted by the GD* module")
	}
}

func TestDMMissAlwaysAdmits(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 100, Beta: 2})
	hit, stored := s.Request(page(1, 60), 0, 0)
	if hit || !stored {
		t.Fatalf("miss should admit under GD*: hit=%v stored=%v", hit, stored)
	}
}

func TestDMOversizedPages(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 100, Beta: 2})
	if stored := s.Push(page(1, 200), 0, 10); stored {
		t.Error("oversized push must not store")
	}
	if _, stored := s.Request(page(2, 200), 0, 0); stored {
		t.Error("oversized request must not store")
	}
}

func TestDMVersionRefresh(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 100, Beta: 2})
	s.Push(page(1, 40), 0, 3)
	s.Push(page(1, 40), 2, 3)
	if hit, _ := s.Request(page(1, 40), 2, 3); !hit {
		t.Error("refreshed version should hit")
	}
	if hit, _ := s.Request(page(1, 40), 3, 3); hit {
		t.Error("newer version than cached should miss")
	}
}

func TestDMCapacityInvariant(t *testing.T) {
	s := mustStrategy(t, NewDM, Params{Capacity: 300, Beta: 2})
	for i := 0; i < 3000; i++ {
		id := (i * 5) % 37
		size := int64(10 + (i*17)%80)
		if i%2 == 0 {
			s.Push(page(id, size), i/1000, (i*3)%7)
		} else {
			s.Request(page(id, size), i/1000, (i*3)%7)
		}
		if s.Used() > s.Capacity() {
			t.Fatalf("step %d: used %d > capacity %d", i, s.Used(), s.Capacity())
		}
	}
	d, ok := s.(*dm)
	if !ok {
		t.Fatal("DM should be *dm")
	}
	// Both heaps must track exactly the resident set.
	if len(d.gdHeap.items) != len(d.byID) || len(d.subHeap.items) != len(d.byID) {
		t.Fatalf("heap sizes diverged: gd=%d sub=%d map=%d",
			len(d.gdHeap.items), len(d.subHeap.items), len(d.byID))
	}
	var sum int64
	for _, e := range d.byID {
		sum += e.Size
	}
	if sum != d.used {
		t.Fatalf("accounting drift: sum=%d used=%d", sum, d.used)
	}
}
