package workload

import (
	"fmt"
	"math"

	"pubsubcd/internal/match"
	"pubsubcd/internal/stats"
)

// minSQPrime guards the division in eq. 7 when SQ <= 0.5 lets SQ' get
// arbitrarily close to zero; smaller draws are rejected and resampled.
const minSQPrime = 0.02

// generateSubscriptions derives per-(page, server) subscription counts
// from the request stream per §4.3 (eq. 7): S = P / SQ', with SQ' drawn in
// [2*SQ-1, 1] when SQ > 0.5 and in [0, 2*SQ] otherwise. Subscriptions
// never fall below the request count (a subscriber reads a page at most
// once), so S >= P.
//
// Imperfect subscriptions mispredict in two ways. First, counts inflate
// (S > P): subscribers who never read the page. Second — the part that
// actually misleads push-time placement — some of that phantom interest
// sits at servers whose users never request the page at all. A fraction
// (1 - SQ) of each pair's excess subscriptions is therefore spilled to
// uniformly random other servers, producing false-positive pushes. At
// SQ = 1 there is no excess and no spill.
//
// When NotificationDrivenFrac < 1, each (page, server) pair is
// notification-driven with that probability; other pairs get zero
// subscriptions and model spontaneous (non-notified) requests — the
// paper's stated future-work scenario.
func generateSubscriptions(cfg Config, pages []Page, requests []Request, g *stats.RNG) ([][]int32, error) {
	reqCount := make([][]int32, len(pages))
	for i := range reqCount {
		reqCount[i] = make([]int32, cfg.Servers)
	}
	for _, r := range requests {
		reqCount[r.Page][r.Server]++
	}
	subs := make([][]int32, len(pages))
	for i := range subs {
		subs[i] = make([]int32, cfg.Servers)
		for j, p := range reqCount[i] {
			if p == 0 {
				continue
			}
			if cfg.NotificationDrivenFrac < 1 && g.Float64() >= cfg.NotificationDrivenFrac {
				continue
			}
			sqPrime := sampleSQPrime(cfg.SQ, g)
			s := int32(math.Round(float64(p) / sqPrime))
			if s < p {
				s = p
			}
			spill := int32(math.Round(float64(s-p) * (1 - cfg.SQ)))
			subs[i][j] += s - spill
			if spill > 0 {
				// The misplaced interest clumps at one other server (a
				// community of subscribers who never read the page), so
				// it can genuinely outrank true interest there.
				subs[i][g.Intn(cfg.Servers)] += spill
			}
		}
	}
	return subs, nil
}

// sampleSQPrime draws SQ' per eq. 7.
func sampleSQPrime(sq float64, g *stats.RNG) float64 {
	if sq >= 1 {
		return 1
	}
	if sq > 0.5 {
		return g.UniformRange(2*sq-1, 1)
	}
	for {
		v := g.UniformRange(0, 2*sq)
		if v >= minSQPrime {
			return v
		}
	}
}

// SubscriptionObjects materialises the aggregated counts as concrete
// match.Subscription values over per-page topics, so the live matching
// engine reproduces exactly the counts the simulator uses. Intended for
// scaled-down workloads: the object count equals the total number of
// subscriptions.
func (w *Workload) SubscriptionObjects() []match.Subscription {
	var out []match.Subscription
	user := 0
	for pageID := range w.Pages {
		for server, n := range w.Subscriptions[pageID] {
			for k := int32(0); k < n; k++ {
				out = append(out, match.Subscription{
					Proxy:      server,
					Subscriber: fmt.Sprintf("user-%d", user),
					Topics:     []string{PageTopic(pageID)},
				})
				user++
			}
		}
	}
	return out
}

// PageTopic returns the topic string the generated subscriptions use for a
// page.
func PageTopic(pageID int) string { return fmt.Sprintf("page/%d", pageID) }

// PageEvent returns the match.Event announcing a page, carrying its topic.
func PageEvent(pageID int) match.Event {
	return match.Event{ID: fmt.Sprintf("%d", pageID), Topics: []string{PageTopic(pageID)}}
}
