package workload

import (
	"fmt"

	"pubsubcd/internal/stats"
)

// Workload is a complete generated workload: the inputs of the simulator
// in Fig. 2 of the paper (publishing stream, request streams, aggregated
// subscriptions).
type Workload struct {
	Config Config
	// Pages holds the distinct pages, indexed by page ID.
	Pages []Page
	// Publications is the publishing stream sorted by time.
	Publications []Publication
	// Requests is the request stream sorted by time.
	Requests []Request
	// Subscriptions[page][server] is the number of end-user
	// subscriptions matching the page aggregated at the server.
	Subscriptions [][]int32

	// eventsCache memoises the per-server event view (see Events). The
	// embedded sync.Once also makes `go vet` flag value copies of
	// Workload, which would silently drop the cache.
	eventsCache
}

// Generate builds a workload from cfg. It is deterministic in cfg.Seed.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := stats.NewRNG(cfg.Seed)
	pages := makePages(cfg, master.Split("pages"))
	counts, err := assignPopularity(cfg, pages, master.Split("popularity"))
	if err != nil {
		return nil, err
	}
	pubs, err := generatePublishing(cfg, pages, master.Split("publishing"))
	if err != nil {
		return nil, err
	}
	requests, err := generateRequests(cfg, pages, counts, master.Split("requests"))
	if err != nil {
		return nil, err
	}
	subs, err := generateSubscriptions(cfg, pages, requests, master.Split("subscriptions"))
	if err != nil {
		return nil, err
	}
	return &Workload{
		Config:        cfg,
		Pages:         pages,
		Publications:  pubs,
		Requests:      requests,
		Subscriptions: subs,
	}, nil
}

// SubCount returns the number of subscriptions matching page at server.
func (w *Workload) SubCount(page, server int) int {
	if page < 0 || page >= len(w.Subscriptions) {
		return 0
	}
	row := w.Subscriptions[page]
	if server < 0 || server >= len(row) {
		return 0
	}
	return int(row[server])
}

// UniqueBytesPerServer returns, for each server, the total size of the
// distinct pages it requests over the whole trace. The paper sizes each
// proxy cache as a percentage of this quantity (§5.1). The totals come
// from the cached event view, so repeated calls are free.
func (w *Workload) UniqueBytesPerServer() []int64 {
	unique := w.Events().UniqueBytes
	out := make([]int64, len(unique))
	copy(out, unique)
	return out
}

// versionTimeline returns, per page, the ascending publication times of
// its versions (index = version number).
func (w *Workload) versionTimeline() [][]float64 {
	timeline := make([][]float64, len(w.Pages))
	for i := range timeline {
		timeline[i] = make([]float64, w.Pages[i].Versions)
	}
	for _, p := range w.Publications {
		if p.Version < len(timeline[p.Page]) {
			timeline[p.Page][p.Version] = p.Time
		}
	}
	return timeline
}

// versionAt returns the page version current at time t (the highest
// version published at or before t; 0 before any publication).
func (w *Workload) versionAt(timeline [][]float64, page int, t float64) int {
	versions := timeline[page]
	v := 0
	for i := 1; i < len(versions); i++ {
		if versions[i] <= t {
			v = i
		} else {
			break
		}
	}
	return v
}

// CacheCapacities returns per-server cache capacities in bytes for a
// capacity fraction (e.g. 0.05 for the paper's 5 % setting). Servers that
// request nothing get a minimal 1-byte cache so the strategies stay
// well-defined.
func (w *Workload) CacheCapacities(fraction float64) ([]int64, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("workload: capacity fraction must be in (0, 1], got %g", fraction)
	}
	return w.Events().CacheCapacities(fraction), nil
}

// RequestsPerServer returns the number of requests issued at each server.
func (w *Workload) RequestsPerServer() []int64 {
	out := make([]int64, w.Config.Servers)
	for _, r := range w.Requests {
		out[r.Server]++
	}
	return out
}

// TotalSubscriptions returns the sum of all subscription counts.
func (w *Workload) TotalSubscriptions() int64 {
	var total int64
	for _, row := range w.Subscriptions {
		for _, n := range row {
			total += int64(n)
		}
	}
	return total
}
