package workload

import (
	"math"
	"sort"
	"testing"

	"pubsubcd/internal/stats"
)

// testConfig is a small but structurally faithful workload for unit tests.
func testConfig() Config {
	cfg := DefaultConfig(TraceNEWS)
	cfg.DistinctPages = 300
	cfg.ModifiedPages = 120
	cfg.TotalPublished = 1500
	cfg.TotalRequests = 10000
	cfg.Servers = 20
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *Workload {
	t.Helper()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig(TraceNEWS)
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		f    func(*Config)
	}{
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"zero servers", func(c *Config) { c.Servers = 0 }},
		{"zero pages", func(c *Config) { c.DistinctPages = 0 }},
		{"modified exceeds distinct", func(c *Config) { c.ModifiedPages = c.DistinctPages + 1 }},
		{"negative modified", func(c *Config) { c.ModifiedPages = -1 }},
		{"published below distinct", func(c *Config) { c.TotalPublished = c.DistinctPages - 1 }},
		{"negative alpha", func(c *Config) { c.Alpha = -0.5 }},
		{"negative requests", func(c *Config) { c.TotalRequests = -1 }},
		{"zero SQ", func(c *Config) { c.SQ = 0 }},
		{"SQ above one", func(c *Config) { c.SQ = 1.5 }},
		{"bad overlap", func(c *Config) { c.ServerOverlap = 1.5 }},
		{"bad notification frac", func(c *Config) { c.NotificationDrivenFrac = -0.1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := base
			m.f(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := Generate(cfg); err == nil {
				t.Error("Generate should reject invalid config")
			}
		})
	}
}

func TestTraceNames(t *testing.T) {
	if DefaultConfig(TraceNEWS).Trace() != TraceNEWS {
		t.Error("NEWS config should report TraceNEWS")
	}
	if DefaultConfig(TraceALTERNATIVE).Trace() != TraceALTERNATIVE {
		t.Error("ALTERNATIVE config should report TraceALTERNATIVE")
	}
	if DefaultConfig(TraceNEWS).Alpha != 1.5 {
		t.Error("NEWS alpha should be 1.5")
	}
	if DefaultConfig(TraceALTERNATIVE).Alpha != 1.0 {
		t.Error("ALTERNATIVE alpha should be 1.0")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig()
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	for i := range a.Publications {
		if a.Publications[i] != b.Publications[i] {
			t.Fatalf("publication %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := testConfig()
	a := mustGenerate(t, cfg)
	cfg.Seed = 2
	b := mustGenerate(t, cfg)
	same := 0
	n := len(a.Requests)
	if len(b.Requests) < n {
		n = len(b.Requests)
	}
	for i := 0; i < n; i++ {
		if a.Requests[i] == b.Requests[i] {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("different seeds produced %d/%d identical requests", same, n)
	}
}

func TestPublishingStreamShape(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	if len(w.Pages) != cfg.DistinctPages {
		t.Fatalf("pages = %d, want %d", len(w.Pages), cfg.DistinctPages)
	}
	if len(w.Publications) > cfg.TotalPublished {
		t.Fatalf("publications = %d, exceeds TotalPublished %d", len(w.Publications), cfg.TotalPublished)
	}
	// With the paper's proportions the version candidates exceed the
	// quota, so the subsample should land exactly on the target.
	if len(w.Publications) != cfg.TotalPublished {
		t.Errorf("publications = %d, want exactly %d", len(w.Publications), cfg.TotalPublished)
	}
	horizon := cfg.Horizon()
	for i, p := range w.Publications {
		if p.Time < 0 || p.Time >= horizon {
			t.Fatalf("publication %d at %g outside [0, %g)", i, p.Time, horizon)
		}
		if i > 0 && p.Time < w.Publications[i-1].Time {
			t.Fatal("publications not sorted by time")
		}
	}
	// Version numbering is contiguous per page starting at 0.
	versions := make(map[int][]int)
	for _, p := range w.Publications {
		versions[p.Page] = append(versions[p.Page], p.Version)
	}
	if len(versions) != cfg.DistinctPages {
		t.Fatalf("only %d pages appear in publishing stream", len(versions))
	}
	for page, vs := range versions {
		sort.Ints(vs)
		for i, v := range vs {
			if v != i {
				t.Fatalf("page %d versions not contiguous: %v", page, vs)
			}
		}
		if len(vs) != w.Pages[page].Versions {
			t.Fatalf("page %d Versions=%d but %d published", page, w.Pages[page].Versions, len(vs))
		}
	}
}

func TestPageSizesPositive(t *testing.T) {
	w := mustGenerate(t, testConfig())
	for _, p := range w.Pages {
		if p.Size < 1 {
			t.Fatalf("page %d has size %d", p.ID, p.Size)
		}
	}
}

func TestRequestStreamShape(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	if len(w.Requests) != cfg.TotalRequests {
		t.Fatalf("requests = %d, want %d", len(w.Requests), cfg.TotalRequests)
	}
	horizon := cfg.Horizon()
	for i, r := range w.Requests {
		if r.Time < 0 || r.Time >= horizon {
			t.Fatalf("request %d at %g outside horizon", i, r.Time)
		}
		if r.Server < 0 || r.Server >= cfg.Servers {
			t.Fatalf("request %d at invalid server %d", i, r.Server)
		}
		if r.Page < 0 || r.Page >= cfg.DistinctPages {
			t.Fatalf("request %d for invalid page %d", i, r.Page)
		}
		if i > 0 && r.Time < w.Requests[i-1].Time {
			t.Fatal("requests not sorted by time")
		}
		if r.Time < w.Pages[r.Page].FirstPublish {
			t.Fatalf("request %d at %g precedes publication %g", i, r.Time, w.Pages[r.Page].FirstPublish)
		}
	}
}

func TestZipfPopularityShape(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	counts := make(map[int]int)
	for _, r := range w.Requests {
		counts[r.Page]++
	}
	// The rank-1 page must receive more requests than the rank-100 page.
	var rank1, rank100 int
	for _, p := range w.Pages {
		if p.Rank == 1 {
			rank1 = counts[p.ID]
		}
		if p.Rank == 100 {
			rank100 = counts[p.ID]
		}
	}
	if rank1 <= rank100 {
		t.Errorf("rank 1 page has %d requests, rank 100 has %d; Zipf shape violated", rank1, rank100)
	}
	// Rough magnitude: with day-local Zipf cohorts, rank 100 globally is
	// a mid-rank page within its cohort, so the ratio is well below the
	// raw 100^1.5, but still at least an order of magnitude.
	if rank100 > 0 && float64(rank1)/float64(rank100) < 10 {
		t.Errorf("rank1/rank100 ratio %g too small for alpha=1.5", float64(rank1)/float64(rank100))
	}
}

func TestPopularityClasses(t *testing.T) {
	w := mustGenerate(t, testConfig())
	classCount := [4]int{}
	for _, p := range w.Pages {
		if p.Class < 0 || p.Class > 3 {
			t.Fatalf("page %d class %d outside [0,3]", p.ID, p.Class)
		}
		classCount[p.Class]++
		if p.Rank == 1 && p.Class != 0 {
			t.Errorf("rank-1 page in class %d, want 0", p.Class)
		}
	}
	populated := 0
	for _, n := range classCount {
		if n > 0 {
			populated++
		}
	}
	if classCount[0] == 0 || populated < 3 {
		t.Errorf("classes should span hot to cold: %v", classCount)
	}
	// Class is monotone in rank.
	byRank := make([]int, len(w.Pages)+1)
	for _, p := range w.Pages {
		byRank[p.Rank] = p.Class
	}
	for r := 2; r <= len(w.Pages); r++ {
		if byRank[r] < byRank[r-1] {
			t.Fatalf("class decreased with rank: rank %d class %d < rank %d class %d", r, byRank[r], r-1, byRank[r-1])
		}
	}
}

func TestFreshnessBias(t *testing.T) {
	// Most requests must land close to publication: the median request
	// age should be far below half the horizon.
	w := mustGenerate(t, testConfig())
	ages := make([]float64, 0, len(w.Requests))
	for _, r := range w.Requests {
		ages = append(ages, r.Time-w.Pages[r.Page].FirstPublish)
	}
	sort.Float64s(ages)
	med := stats.Quantile(ages, 0.5)
	if med > 24 {
		t.Errorf("median request age %g h; expected strong freshness bias (< 1 day)", med)
	}
}

func TestPerfectSubscriptionsEqualRequests(t *testing.T) {
	cfg := testConfig()
	cfg.SQ = 1
	w := mustGenerate(t, cfg)
	reqCount := make(map[[2]int]int32)
	for _, r := range w.Requests {
		reqCount[[2]int{r.Page, r.Server}]++
	}
	for page := range w.Pages {
		for server := 0; server < cfg.Servers; server++ {
			want := reqCount[[2]int{page, server}]
			if got := w.Subscriptions[page][server]; got != want {
				t.Fatalf("SQ=1: subs(page=%d, server=%d) = %d, want %d", page, server, got, want)
			}
		}
	}
}

func TestImperfectSubscriptionsAtLeastRequests(t *testing.T) {
	for _, sq := range []float64{0.25, 0.5, 0.75} {
		cfg := testConfig()
		cfg.SQ = sq
		w := mustGenerate(t, cfg)
		reqCount := make(map[[2]int]int32)
		for _, r := range w.Requests {
			reqCount[[2]int{r.Page, r.Server}]++
		}
		total := int64(0)
		falsePositives := 0
		for page := range w.Pages {
			for server := 0; server < cfg.Servers; server++ {
				p := reqCount[[2]int{page, server}]
				s := w.Subscriptions[page][server]
				if p > 0 && s < p {
					t.Fatalf("SQ=%g: subs %d below requests %d", sq, s, p)
				}
				if p == 0 && s > 0 {
					falsePositives++
				}
				total += int64(s)
			}
		}
		// Imperfect subscriptions must include false positives —
		// subscriptions at servers whose users never request the page —
		// otherwise push-time placement never mispredicts.
		if falsePositives == 0 {
			t.Errorf("SQ=%g: expected some false-positive subscriptions", sq)
		}
		// Lower SQ inflates subscriptions relative to requests.
		if total < int64(cfg.TotalRequests) {
			t.Errorf("SQ=%g: total subscriptions %d below total requests %d", sq, total, cfg.TotalRequests)
		}
	}
}

func TestSubscriptionInflationGrowsAsSQDrops(t *testing.T) {
	totals := make(map[float64]int64)
	for _, sq := range []float64{0.25, 0.75, 1.0} {
		cfg := testConfig()
		cfg.SQ = sq
		w := mustGenerate(t, cfg)
		totals[sq] = w.TotalSubscriptions()
	}
	if !(totals[0.25] > totals[0.75] && totals[0.75] > totals[1.0]) {
		t.Errorf("subscription totals should grow as SQ drops: %v", totals)
	}
}

func TestNotificationDrivenFrac(t *testing.T) {
	cfg := testConfig()
	cfg.NotificationDrivenFrac = 0.5
	w := mustGenerate(t, cfg)
	reqPairs, subPairs := 0, 0
	reqCount := make(map[[2]int]bool)
	for _, r := range w.Requests {
		reqCount[[2]int{r.Page, r.Server}] = true
	}
	reqPairs = len(reqCount)
	for page := range w.Pages {
		for server := 0; server < cfg.Servers; server++ {
			if w.Subscriptions[page][server] > 0 {
				subPairs++
			}
		}
	}
	frac := float64(subPairs) / float64(reqPairs)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("notification-driven fraction %g, want ~0.5", frac)
	}
}

func TestUniqueBytesAndCapacities(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	unique := w.UniqueBytesPerServer()
	if len(unique) != cfg.Servers {
		t.Fatalf("unique bytes length %d, want %d", len(unique), cfg.Servers)
	}
	caps5, err := w.CacheCapacities(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range caps5 {
		if unique[i] > 0 {
			want := int64(float64(unique[i]) * 0.05)
			if want < 1 {
				want = 1
			}
			if caps5[i] != want {
				t.Fatalf("server %d capacity %d, want %d", i, caps5[i], want)
			}
		}
	}
	if _, err := w.CacheCapacities(0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := w.CacheCapacities(1.5); err == nil {
		t.Error("fraction above 1 should error")
	}
}

func TestServerPoolSizeScalesWithPopularity(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	servers := make(map[int]map[int]bool)
	counts := make(map[int]int)
	for _, r := range w.Requests {
		if servers[r.Page] == nil {
			servers[r.Page] = make(map[int]bool)
		}
		servers[r.Page][r.Server] = true
		counts[r.Page]++
	}
	// The most popular page should be requested from more servers than a
	// mid-tail page.
	var hot, mid int
	for _, p := range w.Pages {
		if p.Rank == 1 {
			hot = p.ID
		}
		if p.Rank == 50 {
			mid = p.ID
		}
	}
	if len(servers[hot]) <= len(servers[mid]) {
		t.Errorf("hot page seen at %d servers, mid page at %d; pool should scale with popularity",
			len(servers[hot]), len(servers[mid]))
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := ScaledConfig(TraceNEWS, 20)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if cfg.DistinctPages != 300 {
		t.Errorf("scaled pages = %d, want 300", cfg.DistinctPages)
	}
	if ScaledConfig(TraceNEWS, 1) != DefaultConfig(TraceNEWS) {
		t.Error("factor 1 should return the default config")
	}
	// Extreme factors still validate.
	cfg = ScaledConfig(TraceALTERNATIVE, 100000)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("extreme scaled config invalid: %v", err)
	}
}

func TestSampleSQPrimeRanges(t *testing.T) {
	g := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := sampleSQPrime(1, g); v != 1 {
			t.Fatalf("SQ=1 must yield SQ'=1, got %g", v)
		}
		if v := sampleSQPrime(0.75, g); v < 0.5 || v > 1 {
			t.Fatalf("SQ=0.75: SQ'=%g outside [0.5, 1]", v)
		}
		if v := sampleSQPrime(0.25, g); v < minSQPrime || v > 0.5 {
			t.Fatalf("SQ=0.25: SQ'=%g outside [%g, 0.5]", v, minSQPrime)
		}
	}
}

func TestRequestCountMatchesMeanSQRoughly(t *testing.T) {
	// With SQ=0.75, E[SQ'] = 0.75, so total subscriptions should exceed
	// requests by roughly 1/0.72 (Jensen) — just check a sane band.
	cfg := testConfig()
	cfg.SQ = 0.75
	w := mustGenerate(t, cfg)
	ratio := float64(w.TotalSubscriptions()) / float64(cfg.TotalRequests)
	if ratio < 1.05 || ratio > 2.5 {
		t.Errorf("SQ=0.75 subscription inflation ratio %g outside plausible band", ratio)
	}
}

func TestSubscriptionObjectsMatchCounts(t *testing.T) {
	cfg := testConfig()
	cfg.DistinctPages = 40
	cfg.ModifiedPages = 10
	cfg.TotalPublished = 80
	cfg.TotalRequests = 500
	w := mustGenerate(t, cfg)
	objs := w.SubscriptionObjects()
	if int64(len(objs)) != w.TotalSubscriptions() {
		t.Fatalf("materialised %d objects, counts say %d", len(objs), w.TotalSubscriptions())
	}
	// Spot-check one page through the real matching engine.
	page := 0
	for p := range w.Pages {
		if w.Subscriptions[p] != nil {
			sum := int32(0)
			for _, n := range w.Subscriptions[p] {
				sum += n
			}
			if sum > 0 {
				page = p
				break
			}
		}
	}
	ev := PageEvent(page)
	if ev.Topics[0] != PageTopic(page) {
		t.Fatal("PageEvent topic mismatch")
	}
}

func TestHorizon(t *testing.T) {
	cfg := DefaultConfig(TraceNEWS)
	if h := cfg.Horizon(); math.Abs(h-168) > 1e-12 {
		t.Errorf("Horizon = %g, want 168", h)
	}
}
