package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	cfg := DefaultConfig(TraceNEWS)
	cfg.DistinctPages = 50
	cfg.ModifiedPages = 20
	cfg.TotalPublished = 200
	cfg.TotalRequests = 1000
	cfg.Servers = 10
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRoundTripFormats(t *testing.T) {
	w := smallWorkload(t)
	for _, format := range []Format{FormatJSON, FormatGob} {
		t.Run(string(format), func(t *testing.T) {
			var buf bytes.Buffer
			if err := w.Write(&buf, format); err != nil {
				t.Fatal(err)
			}
			got, err := Read(&buf, format)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Config, w.Config) {
				t.Error("config round-trip mismatch")
			}
			if !reflect.DeepEqual(got.Requests, w.Requests) {
				t.Error("requests round-trip mismatch")
			}
			if !reflect.DeepEqual(got.Publications, w.Publications) {
				t.Error("publications round-trip mismatch")
			}
			if !reflect.DeepEqual(got.Subscriptions, w.Subscriptions) {
				t.Error("subscriptions round-trip mismatch")
			}
		})
	}
}

func TestUnknownFormat(t *testing.T) {
	w := smallWorkload(t)
	var buf bytes.Buffer
	if err := w.Write(&buf, Format("xml")); err == nil {
		t.Error("unknown write format should error")
	}
	if _, err := Read(&buf, Format("xml")); err == nil {
		t.Error("unknown read format should error")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	in := strings.NewReader(`{"formatVersion": 99}`)
	if _, err := Read(in, FormatJSON); err == nil {
		t.Error("wrong format version should error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json"), FormatJSON); err == nil {
		t.Error("garbage JSON should error")
	}
	if _, err := Read(strings.NewReader("not gob"), FormatGob); err == nil {
		t.Error("garbage gob should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w := smallWorkload(t)
	dir := t.TempDir()
	for _, name := range []string{"trace.json", "trace.gob", "trace.json.gz", "trace.gob.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := w.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			got, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Requests) != len(w.Requests) {
				t.Fatalf("loaded %d requests, want %d", len(got.Requests), len(w.Requests))
			}
		})
	}
}

func TestSaveFileBadExtension(t *testing.T) {
	w := smallWorkload(t)
	if err := w.SaveFile(filepath.Join(t.TempDir(), "trace.xml")); err == nil {
		t.Error("unknown extension should error")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
