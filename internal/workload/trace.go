package workload

import (
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Format names a trace serialisation format.
type Format string

const (
	// FormatJSON is human-readable JSON.
	FormatJSON Format = "json"
	// FormatGob is the compact binary encoding/gob format.
	FormatGob Format = "gob"
)

// traceEnvelope is the on-disk representation.
type traceEnvelope struct {
	FormatVersion int           `json:"formatVersion"`
	Config        Config        `json:"config"`
	Pages         []Page        `json:"pages"`
	Publications  []Publication `json:"publications"`
	Requests      []Request     `json:"requests"`
	Subscriptions [][]int32     `json:"subscriptions"`
}

const traceFormatVersion = 1

// Write serialises the workload to w in the given format.
func (w *Workload) Write(out io.Writer, format Format) error {
	env := traceEnvelope{
		FormatVersion: traceFormatVersion,
		Config:        w.Config,
		Pages:         w.Pages,
		Publications:  w.Publications,
		Requests:      w.Requests,
		Subscriptions: w.Subscriptions,
	}
	switch format {
	case FormatJSON:
		enc := json.NewEncoder(out)
		return enc.Encode(&env)
	case FormatGob:
		return gob.NewEncoder(out).Encode(&env)
	default:
		return fmt.Errorf("workload: unknown trace format %q", format)
	}
}

// Read deserialises a workload written by Write.
func Read(in io.Reader, format Format) (*Workload, error) {
	var env traceEnvelope
	switch format {
	case FormatJSON:
		if err := json.NewDecoder(in).Decode(&env); err != nil {
			return nil, fmt.Errorf("workload: decode json trace: %w", err)
		}
	case FormatGob:
		if err := gob.NewDecoder(in).Decode(&env); err != nil {
			return nil, fmt.Errorf("workload: decode gob trace: %w", err)
		}
	default:
		return nil, fmt.Errorf("workload: unknown trace format %q", format)
	}
	if env.FormatVersion != traceFormatVersion {
		return nil, fmt.Errorf("workload: unsupported trace format version %d (want %d)", env.FormatVersion, traceFormatVersion)
	}
	w := &Workload{
		Config:        env.Config,
		Pages:         env.Pages,
		Publications:  env.Publications,
		Requests:      env.Requests,
		Subscriptions: env.Subscriptions,
	}
	if err := w.Config.Validate(); err != nil {
		return nil, fmt.Errorf("workload: trace config invalid: %w", err)
	}
	return w, nil
}

// SaveFile writes the workload to path. The format is chosen from the
// extension: .json (JSON), .gob (gob); a trailing .gz adds gzip
// compression (e.g. trace.gob.gz).
func (w *Workload) SaveFile(path string) error {
	format, compressed, err := formatFromPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: save trace: %w", err)
	}
	defer f.Close()
	var out io.Writer = f
	var gz *gzip.Writer
	if compressed {
		gz = gzip.NewWriter(f)
		out = gz
	}
	if err := w.Write(out, format); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("workload: save trace: %w", err)
		}
	}
	return f.Close()
}

// LoadFile reads a workload saved with SaveFile.
func LoadFile(path string) (*Workload, error) {
	format, compressed, err := formatFromPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: load trace: %w", err)
	}
	defer f.Close()
	var in io.Reader = f
	if compressed {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("workload: load trace: %w", err)
		}
		defer gz.Close()
		in = gz
	}
	return Read(in, format)
}

func formatFromPath(path string) (Format, bool, error) {
	name := path
	compressed := false
	if strings.HasSuffix(name, ".gz") {
		compressed = true
		name = strings.TrimSuffix(name, ".gz")
	}
	switch filepath.Ext(name) {
	case ".json":
		return FormatJSON, compressed, nil
	case ".gob":
		return FormatGob, compressed, nil
	default:
		return "", false, fmt.Errorf("workload: cannot infer trace format from %q (want .json, .gob, optionally .gz)", path)
	}
}
