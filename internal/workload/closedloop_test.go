package workload

import (
	"math"
	"testing"
)

func TestDeriveClosedLoopBasics(t *testing.T) {
	w := mustGenerate(t, testConfig())
	cl, err := DeriveClosedLoop(w, 9)
	if err != nil {
		t.Fatal(err)
	}
	// At SQ=1 every subscriber reads exactly once: the closed-loop
	// request count equals the subscription total.
	if int64(len(cl.Requests)) != w.TotalSubscriptions() {
		t.Errorf("closed-loop requests %d, subscriptions %d", len(cl.Requests), w.TotalSubscriptions())
	}
	horizon := w.Config.Horizon()
	for i, r := range cl.Requests {
		if r.Time < 0 || r.Time >= horizon {
			t.Fatalf("request %d outside horizon", i)
		}
		if r.Time < w.Pages[r.Page].FirstPublish {
			t.Fatalf("request %d precedes publication", i)
		}
		if w.Subscriptions[r.Page][r.Server] == 0 {
			t.Fatalf("closed-loop request without a subscription at (page %d, server %d)", r.Page, r.Server)
		}
		if i > 0 && r.Time < cl.Requests[i-1].Time {
			t.Fatal("closed-loop requests not sorted")
		}
	}
	if cl.Config.TotalRequests != len(cl.Requests) {
		t.Error("config TotalRequests not updated")
	}
}

func TestDeriveClosedLoopSQScalesVolume(t *testing.T) {
	cfg := testConfig()
	cfg.SQ = 0.5
	w := mustGenerate(t, cfg)
	cl, err := DeriveClosedLoop(w, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(w.TotalSubscriptions()) * 0.5
	got := float64(len(cl.Requests))
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("closed-loop volume %g, want ~%g (SQ x subscriptions)", got, want)
	}
}

func TestDeriveClosedLoopDeterministic(t *testing.T) {
	w := mustGenerate(t, testConfig())
	a, err := DeriveClosedLoop(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveClosedLoop(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed produced different volumes")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs across identical derivations", i)
		}
	}
	c, err := DeriveClosedLoop(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Requests) == len(a.Requests) {
		same := 0
		for i := range c.Requests {
			if c.Requests[i] == a.Requests[i] {
				same++
			}
		}
		if same == len(c.Requests) {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestDeriveClosedLoopNil(t *testing.T) {
	if _, err := DeriveClosedLoop(nil, 1); err == nil {
		t.Error("nil workload should error")
	}
}
