// Package workload generates the paper's synthetic 7-day news-delivery
// workload (§4): a publishing stream, per-proxy request streams, and
// subscription counts, all derived from the published analysis of the
// MSNBC site (Padmanabhan & Qiu, SIGCOMM 2000) the paper parameterises
// from. Everything is deterministic given Config.Seed.
//
// Time is measured in hours from the start of the simulation; the default
// horizon is 7 days = 168 hours.
package workload

import (
	"fmt"

	"pubsubcd/internal/stats"
)

// HoursPerDay is the number of simulation hours per day.
const HoursPerDay = 24.0

// Config parameterises workload generation. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Seed drives all random draws.
	Seed int64
	// Days is the simulation horizon in days (paper: 7).
	Days int
	// Servers is the number of proxy servers (paper: 100).
	Servers int
	// DistinctPages is the number of original pages (paper: 6000).
	DistinctPages int
	// ModifiedPages is how many of the originals receive modified
	// versions (paper: 2400).
	ModifiedPages int
	// TotalPublished is the total size of the publishing sequence,
	// originals plus modified versions (paper: 30147).
	TotalPublished int
	// Alpha is the Zipf homogeneity parameter of the popularity
	// distribution (paper: 1.5 for NEWS, 1.0 for ALTERNATIVE).
	Alpha float64
	// TotalRequests is the total number of requests across all servers
	// (paper: ~195000 after the 1/1000 scale-down).
	TotalRequests int
	// SQ is the subscription quality of eq. 7; 1 means subscriptions
	// perfectly predict requests.
	SQ float64
	// SizeDist generates page sizes in bytes.
	SizeDist stats.LogNormal
	// ServerOverlap is the fraction of a page's candidate-server pool
	// kept from one day to the next (paper: 0.6).
	ServerOverlap float64
	// NotificationDrivenFrac is the fraction of (page, server) request
	// mass driven by notifications and therefore backed by
	// subscriptions. The paper assumes 1; values below 1 model its
	// stated future work of mixed request streams.
	NotificationDrivenFrac float64
}

// TraceName identifies the two request traces studied in the paper.
type TraceName string

const (
	// TraceNEWS is the news-like trace with Zipf alpha = 1.5.
	TraceNEWS TraceName = "NEWS"
	// TraceALTERNATIVE is the regular-web trace with Zipf alpha = 1.0.
	TraceALTERNATIVE TraceName = "ALTERNATIVE"
)

// ParseTrace validates a trace name from user input.
func ParseTrace(s string) (TraceName, error) {
	switch TraceName(s) {
	case TraceNEWS:
		return TraceNEWS, nil
	case TraceALTERNATIVE:
		return TraceALTERNATIVE, nil
	default:
		return "", fmt.Errorf("workload: unknown trace %q (want %s or %s)", s, TraceNEWS, TraceALTERNATIVE)
	}
}

// DefaultConfig returns the paper's full-scale configuration for the given
// trace.
func DefaultConfig(trace TraceName) Config {
	cfg := Config{
		Seed:                   1,
		Days:                   7,
		Servers:                100,
		DistinctPages:          6000,
		ModifiedPages:          2400,
		TotalPublished:         30147,
		Alpha:                  1.5,
		TotalRequests:          195000,
		SQ:                     1,
		SizeDist:               stats.PaperPageSizes,
		ServerOverlap:          0.6,
		NotificationDrivenFrac: 1,
	}
	if trace == TraceALTERNATIVE {
		cfg.Alpha = 1.0
	}
	return cfg
}

// ScaledConfig returns a configuration shrunk by factor (pages, requests
// and publications divided by factor) for tests and benchmarks. The
// distributional shape is preserved.
func ScaledConfig(trace TraceName, factor int) Config {
	cfg := DefaultConfig(trace)
	if factor <= 1 {
		return cfg
	}
	cfg.DistinctPages /= factor
	cfg.ModifiedPages /= factor
	cfg.TotalPublished /= factor
	cfg.TotalRequests /= factor
	if cfg.DistinctPages < 10 {
		cfg.DistinctPages = 10
	}
	if cfg.ModifiedPages >= cfg.DistinctPages {
		cfg.ModifiedPages = cfg.DistinctPages / 2
	}
	if cfg.TotalPublished < cfg.DistinctPages {
		cfg.TotalPublished = cfg.DistinctPages
	}
	if cfg.TotalRequests < 100 {
		cfg.TotalRequests = 100
	}
	return cfg
}

// Trace reports which named trace the config corresponds to, based on
// alpha.
func (c Config) Trace() TraceName {
	if c.Alpha >= 1.25 {
		return TraceNEWS
	}
	return TraceALTERNATIVE
}

// Horizon returns the simulation horizon in hours.
func (c Config) Horizon() float64 { return float64(c.Days) * HoursPerDay }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return fmt.Errorf("workload: Days must be positive, got %d", c.Days)
	case c.Servers <= 0:
		return fmt.Errorf("workload: Servers must be positive, got %d", c.Servers)
	case c.DistinctPages <= 0:
		return fmt.Errorf("workload: DistinctPages must be positive, got %d", c.DistinctPages)
	case c.ModifiedPages < 0 || c.ModifiedPages > c.DistinctPages:
		return fmt.Errorf("workload: ModifiedPages %d out of [0, %d]", c.ModifiedPages, c.DistinctPages)
	case c.TotalPublished < c.DistinctPages:
		return fmt.Errorf("workload: TotalPublished %d below DistinctPages %d", c.TotalPublished, c.DistinctPages)
	case c.Alpha < 0:
		return fmt.Errorf("workload: Alpha must be non-negative, got %g", c.Alpha)
	case c.TotalRequests < 0:
		return fmt.Errorf("workload: TotalRequests must be non-negative, got %d", c.TotalRequests)
	case c.SQ <= 0 || c.SQ > 1:
		return fmt.Errorf("workload: SQ must be in (0, 1], got %g", c.SQ)
	case c.ServerOverlap < 0 || c.ServerOverlap > 1:
		return fmt.Errorf("workload: ServerOverlap must be in [0, 1], got %g", c.ServerOverlap)
	case c.NotificationDrivenFrac < 0 || c.NotificationDrivenFrac > 1:
		return fmt.Errorf("workload: NotificationDrivenFrac must be in [0, 1], got %g", c.NotificationDrivenFrac)
	}
	return nil
}
