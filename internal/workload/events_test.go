package workload

import (
	"sync"
	"testing"
)

func eventTestWorkload(t *testing.T) *Workload {
	t.Helper()
	cfg := DefaultConfig(TraceNEWS)
	cfg.DistinctPages = 300
	cfg.ModifiedPages = 120
	cfg.TotalPublished = 1500
	cfg.TotalRequests = 9000
	cfg.Servers = 12
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEventViewMatchesSequentialReplay re-runs the global interleaved
// merge the sequential simulator performs and checks that the view's
// per-server streams are exactly its per-server restriction: same event
// order, same routed subscription counts, and the same resolved version
// at every request.
func TestEventViewMatchesSequentialReplay(t *testing.T) {
	w := eventTestWorkload(t)
	v := w.Events()
	if len(v.Streams) != w.Config.Servers {
		t.Fatalf("view has %d streams, want %d", len(v.Streams), w.Config.Servers)
	}

	cursors := make([]int, w.Config.Servers)
	current := make([]int, len(w.Pages))
	for i := range current {
		current[i] = -1
	}
	pubs, reqs := w.Publications, w.Requests
	pi, ri := 0, 0
	for pi < len(pubs) || ri < len(reqs) {
		if pi < len(pubs) && (ri >= len(reqs) || pubs[pi].Time <= reqs[ri].Time) {
			p := pubs[pi]
			pi++
			if p.Version > current[p.Page] {
				current[p.Page] = p.Version
			}
			row := w.Subscriptions[p.Page]
			for s := 0; s < w.Config.Servers; s++ {
				if row[s] == 0 {
					continue
				}
				ev := v.Streams[s][cursors[s]]
				cursors[s]++
				if ev.Request || int(ev.Page) != p.Page || int(ev.Version) != p.Version ||
					ev.Time != p.Time || ev.Subs != row[s] {
					t.Fatalf("server %d publication event mismatch: got %+v, want pub %+v subs=%d",
						s, ev, p, row[s])
				}
			}
			continue
		}
		r := reqs[ri]
		ri++
		version := current[r.Page]
		if version < 0 {
			version = 0
		}
		ev := v.Streams[r.Server][cursors[r.Server]]
		cursors[r.Server]++
		if !ev.Request || int(ev.Page) != r.Page || ev.Time != r.Time {
			t.Fatalf("server %d request event mismatch: got %+v, want %+v", r.Server, ev, r)
		}
		if int(ev.Version) != version {
			t.Fatalf("request for page %d at t=%g resolved version %d, want %d",
				r.Page, r.Time, ev.Version, version)
		}
		if ev.Subs != w.Subscriptions[r.Page][r.Server] {
			t.Fatalf("request subs = %d, want %d", ev.Subs, w.Subscriptions[r.Page][r.Server])
		}
	}
	for s, c := range cursors {
		if c != len(v.Streams[s]) {
			t.Errorf("server %d stream has %d events, replay consumed %d", s, len(v.Streams[s]), c)
		}
	}
}

// TestEventViewUniqueBytes checks the view's cache-sizing totals against
// an independent map-based computation.
func TestEventViewUniqueBytes(t *testing.T) {
	w := eventTestWorkload(t)
	seen := make([]map[int]bool, w.Config.Servers)
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	want := make([]int64, w.Config.Servers)
	for _, r := range w.Requests {
		if !seen[r.Server][r.Page] {
			seen[r.Server][r.Page] = true
			want[r.Server] += w.Pages[r.Page].Size
		}
	}
	got := w.UniqueBytesPerServer()
	for s := range want {
		if got[s] != want[s] {
			t.Errorf("server %d unique bytes = %d, want %d", s, got[s], want[s])
		}
	}
	caps, err := w.CacheCapacities(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for s := range caps {
		expect := int64(float64(want[s]) * 0.05)
		if expect < 1 {
			expect = 1
		}
		if caps[s] != expect {
			t.Errorf("server %d capacity = %d, want %d", s, caps[s], expect)
		}
	}
}

// TestEventViewConcurrentAccess hammers Events from many goroutines; all
// callers must observe the identical cached view (run under -race).
func TestEventViewConcurrentAccess(t *testing.T) {
	w := eventTestWorkload(t)
	const n = 8
	views := make([]*EventView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = w.Events()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if views[i] != views[0] {
			t.Fatal("Events returned distinct views to concurrent callers")
		}
	}
}

// TestEventViewStreamsSorted asserts each per-server stream is
// time-ordered with publications before requests at equal timestamps.
func TestEventViewStreamsSorted(t *testing.T) {
	w := eventTestWorkload(t)
	for s, stream := range w.Events().Streams {
		for i := 1; i < len(stream); i++ {
			a, b := stream[i-1], stream[i]
			if b.Time < a.Time {
				t.Fatalf("server %d stream out of order at %d: %g after %g", s, i, b.Time, a.Time)
			}
			if b.Time == a.Time && a.Request && !b.Request {
				t.Fatalf("server %d: request precedes publication at t=%g", s, a.Time)
			}
		}
	}
}
