package workload

import (
	"fmt"
	"math"
	"sort"

	"pubsubcd/internal/stats"
)

// Page is an original page of the publishing stream.
type Page struct {
	// ID indexes the page in Workload.Pages.
	ID int
	// Rank is the 1-based Zipf popularity rank.
	Rank int
	// Size is the content size in bytes, constant across versions.
	Size int64
	// FirstPublish is the publication time of version 0 in hours.
	FirstPublish float64
	// Class is the popularity class in [0, 3]; 0 is the hottest decade
	// of request rates (§4.2, "Deciding Request Times").
	Class int
	// Versions is the total number of published versions (>= 1).
	Versions int
}

// Publication is one entry of the publishing stream: version v of a page
// becomes available at Time. Version 0 is the original.
type Publication struct {
	Time    float64
	Page    int
	Version int
}

// modificationIntervals returns the step-wise distribution of page
// modification intervals (§4.1): 5 % shorter than an hour, 90 % between an
// hour and a day, 5 % between a day and the horizon.
func modificationIntervals(horizon float64) (*stats.StepWise, error) {
	hi := 7 * HoursPerDay
	if horizon < hi {
		hi = horizon
	}
	if hi <= HoursPerDay {
		// Short horizons collapse the >1 day bucket.
		return stats.NewStepWise(
			[]float64{0.1, 1, hi},
			[]float64{0.05, 0.95},
		)
	}
	return stats.NewStepWise(
		[]float64{0.1, 1, HoursPerDay, hi},
		[]float64{0.05, 0.90, 0.05},
	)
}

// makePages creates the distinct pages with sizes and first-publish times.
func makePages(cfg Config, g *stats.RNG) []Page {
	horizon := cfg.Horizon()
	pages := make([]Page, cfg.DistinctPages)
	for i := range pages {
		pages[i] = Page{
			ID:           i,
			Size:         cfg.SizeDist.SampleBytes(g),
			FirstPublish: g.Float64() * horizon,
			Versions:     1,
		}
	}
	return pages
}

// modBiasExponent controls how strongly modification is correlated with
// popularity: pages are sampled for modification with weight
// rank^-modBiasExponent. Following the observation the paper builds on
// (Padmanabhan & Qiu; also the Gadde et al. quote in §4 that popular
// objects have high update frequencies), popular news pages are updated
// more often; the exponent is calibrated so the baseline's hit ratio and
// the pushing traffic land in the paper's reported range.
const modBiasExponent = 0.45

// chooseModified picks which pages receive modified versions, biased
// toward popular pages.
func chooseModified(cfg Config, pages []Page, g *stats.RNG) []int {
	type cand struct {
		page int
		key  float64
	}
	cands := make([]cand, len(pages))
	for i := range pages {
		w := math.Pow(float64(pages[i].Rank), -modBiasExponent)
		// Weighted sampling without replacement via exponential keys:
		// key = Exp(1)/w; the smallest ModifiedPages keys win.
		cands[i] = cand{page: i, key: g.ExpFloat64() / w}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].key < cands[b].key })
	out := make([]int, cfg.ModifiedPages)
	for i := 0; i < cfg.ModifiedPages; i++ {
		out[i] = cands[i].page
	}
	return out
}

// assignIntervals draws modification intervals from the paper's step-wise
// distribution and assigns them assortatively: the most popular modified
// pages get the shortest intervals (breaking news is updated most often,
// per the Padmanabhan-Qiu observations the workload builds on).
func assignIntervals(cfg Config, pages []Page, modified []int, g *stats.RNG) (map[int]float64, error) {
	dist, err := modificationIntervals(cfg.Horizon())
	if err != nil {
		return nil, fmt.Errorf("workload: modification intervals: %w", err)
	}
	intervals := make([]float64, len(modified))
	for i := range intervals {
		intervals[i] = dist.Sample(g)
	}
	sort.Float64s(intervals)
	byRank := append([]int(nil), modified...)
	sort.Slice(byRank, func(a, b int) bool { return pages[byRank[a]].Rank < pages[byRank[b]].Rank })
	out := make(map[int]float64, len(modified))
	for i, p := range byRank {
		out[p] = intervals[i]
	}
	return out, nil
}

// countVersions returns the number of modified versions page p would
// publish with its interval scaled by lambda.
func countVersions(horizon, firstPublish, interval, lambda float64) int {
	iv := interval * lambda
	if iv <= 0 {
		return 0
	}
	n := int((horizon - firstPublish) / iv)
	if n < 0 {
		n = 0
	}
	return n
}

// generatePublishing builds the pages and the time-sorted publishing
// stream. Pages must already carry popularity ranks. Modified pages
// republish at their fixed interval until the horizon; a single global
// scale factor on the intervals is solved by bisection so the stream
// totals cfg.TotalPublished entries (the paper fixes the total at 30,147)
// while preserving the relative update frequencies across pages.
func generatePublishing(cfg Config, pages []Page, g *stats.RNG) ([]Publication, error) {
	horizon := cfg.Horizon()
	quota := cfg.TotalPublished - cfg.DistinctPages

	pubs := make([]Publication, 0, cfg.TotalPublished)
	for i := range pages {
		pubs = append(pubs, Publication{Time: pages[i].FirstPublish, Page: i, Version: 0})
	}

	if cfg.ModifiedPages > 0 && quota > 0 {
		modified := chooseModified(cfg, pages, g)
		intervals, err := assignIntervals(cfg, pages, modified, g)
		if err != nil {
			return nil, err
		}
		total := func(lambda float64) int {
			n := 0
			for p, iv := range intervals {
				n += countVersions(horizon, pages[p].FirstPublish, iv, lambda)
			}
			return n
		}
		// Bisection on the interval scale: larger lambda → longer
		// intervals → fewer versions.
		lo, hi := 1e-3, 1e3
		if total(lo) < quota {
			hi = lo // even the densest scaling undershoots; keep all
		} else {
			for i := 0; i < 60; i++ {
				mid := math.Sqrt(lo * hi) // geometric bisection
				if total(mid) > quota {
					lo = mid
				} else {
					hi = mid
				}
			}
		}
		lambda := hi
		// Emit versions; trim any overshoot from the sparsest pages'
		// final versions (deterministic, keeps hot pages intact).
		type pv struct {
			page int
			time float64
			ver  int
		}
		var versions []pv
		pageIDs := make([]int, 0, len(intervals))
		for p := range intervals {
			pageIDs = append(pageIDs, p)
		}
		sort.Ints(pageIDs)
		for _, p := range pageIDs {
			iv := intervals[p] * lambda
			n := countVersions(horizon, pages[p].FirstPublish, iv, 1)
			for k := 1; k <= n; k++ {
				versions = append(versions, pv{page: p, time: pages[p].FirstPublish + float64(k)*iv, ver: k})
			}
		}
		if len(versions) > quota {
			// Drop the latest-in-time surplus versions.
			sort.Slice(versions, func(a, b int) bool {
				if versions[a].time != versions[b].time {
					return versions[a].time < versions[b].time
				}
				return versions[a].page < versions[b].page
			})
			versions = versions[:quota]
		}
		// Renumber contiguously per page in time order.
		sort.Slice(versions, func(a, b int) bool {
			if versions[a].page != versions[b].page {
				return versions[a].page < versions[b].page
			}
			return versions[a].time < versions[b].time
		})
		ver := 0
		for i, v := range versions {
			if i == 0 || versions[i-1].page != v.page {
				ver = 1
			}
			pubs = append(pubs, Publication{Time: v.time, Page: v.page, Version: ver})
			pages[v.page].Versions = ver + 1
			ver++
		}
	}

	sort.Slice(pubs, func(i, j int) bool {
		if pubs[i].Time != pubs[j].Time {
			return pubs[i].Time < pubs[j].Time
		}
		if pubs[i].Page != pubs[j].Page {
			return pubs[i].Page < pubs[j].Page
		}
		return pubs[i].Version < pubs[j].Version
	})
	return pubs, nil
}
