package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	cfg := testConfig()
	w := mustGenerate(t, cfg)
	a := w.Analyze()

	if a.DistinctPages != cfg.DistinctPages {
		t.Errorf("DistinctPages = %d, want %d", a.DistinctPages, cfg.DistinctPages)
	}
	if a.Publications != len(w.Publications) {
		t.Errorf("Publications = %d, want %d", a.Publications, len(w.Publications))
	}
	if a.Requests != cfg.TotalRequests {
		t.Errorf("Requests = %d, want %d", a.Requests, cfg.TotalRequests)
	}
	if a.ModifiedVersions != a.Publications-a.DistinctPages {
		t.Errorf("ModifiedVersions = %d, want %d", a.ModifiedVersions, a.Publications-a.DistinctPages)
	}
	if a.ModifiedPages <= 0 || a.ModifiedPages > cfg.ModifiedPages {
		t.Errorf("ModifiedPages = %d outside (0, %d]", a.ModifiedPages, cfg.ModifiedPages)
	}
	if a.TopPageShare <= 0 || a.TopPageShare > 1 {
		t.Errorf("TopPageShare = %g", a.TopPageShare)
	}
	if a.Top10Share < a.TopPageShare {
		t.Error("top-10 share below top-1 share")
	}
	if a.UniquePairs <= 0 || a.RequestsPerPair < 1 {
		t.Errorf("pair stats: %d pairs, %g per pair", a.UniquePairs, a.RequestsPerPair)
	}
	shareSum := 0.0
	for _, s := range a.ClassRequestShares {
		shareSum += s
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("class shares sum to %g", shareSum)
	}
	if a.SubsOverRequests < 1-1e-9 {
		t.Errorf("SQ=1: subscriptions %gx requests, want >= 1", a.SubsOverRequests)
	}
	if a.NotificationBacked < 0.999 {
		t.Errorf("SQ=1: %.3f of requests backed, want ~1", a.NotificationBacked)
	}
	if a.FalsePositivePairs != 0 {
		t.Errorf("SQ=1 should have no false positives, got %d", a.FalsePositivePairs)
	}
}

func TestAnalyzeImperfectSQHasFalsePositives(t *testing.T) {
	cfg := testConfig()
	cfg.SQ = 0.5
	w := mustGenerate(t, cfg)
	a := w.Analyze()
	if a.FalsePositivePairs == 0 {
		t.Error("SQ=0.5 should produce false-positive subscription pairs")
	}
	if a.SubsOverRequests <= 1 {
		t.Errorf("SQ=0.5 should inflate subscriptions, got %gx", a.SubsOverRequests)
	}
}

func TestAnalysisWriteText(t *testing.T) {
	w := mustGenerate(t, testConfig())
	var buf bytes.Buffer
	if err := w.Analyze().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Publishing stream", "Request stream", "Subscriptions", "top page share"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEffectiveZipfAlpha(t *testing.T) {
	w := mustGenerate(t, testConfig())
	counts := make([]int, len(w.Pages))
	for _, r := range w.Requests {
		counts[r.Page]++
	}
	a := w.Analyze()
	alpha := a.EffectiveZipfAlpha(counts, 5)
	if math.IsNaN(alpha) {
		t.Fatal("alpha estimate is NaN")
	}
	// Day-local cohorts flatten the global curve below the per-cohort
	// alpha; the estimate should still indicate a clearly skewed
	// distribution.
	if alpha < 0.4 || alpha > 2.5 {
		t.Errorf("effective alpha %g outside plausible band", alpha)
	}
	// Degenerate inputs.
	if !math.IsNaN(a.EffectiveZipfAlpha([]int{1}, 1)) {
		t.Error("too few points should yield NaN")
	}
}
