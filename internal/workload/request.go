package workload

import (
	"fmt"
	"math"
	"sort"

	"pubsubcd/internal/stats"
)

// Request is one entry of the request stream: at Time, a user behind proxy
// Server asks for Page.
type Request struct {
	Time   float64
	Page   int
	Server int
}

// ageDistByClass are the Lomax age distributions that place request times
// after publication, one per popularity class. Higher gamma and smaller
// scale concentrate requests on fresh pages: class 0 (hottest) decays
// fastest, matching the paper's observation that the more popular a page,
// the stronger the negative correlation between access probability and
// age — while the widening tails spread unpopular pages' few re-references
// across days, the regime where only subscription information can keep a
// page cached until its next use.
var ageDistByClass = [4]stats.Lomax{
	{Scale: 6, Gamma: 1.1},
	{Scale: 16, Gamma: 0.5},
	{Scale: 36, Gamma: 0.3},
	{Scale: 48, Gamma: 0.2},
}

// assignPopularity apportions the total request volume across pages and
// stamps ranks and classes. Popularity is day-local: the pages first
// published on each day form a cohort with its own Zipf(alpha) popularity
// distribution over a request budget proportional to the cohort size.
// This reflects the observation underlying the workload (Padmanabhan &
// Qiu) that the set of popular news pages turns over almost completely
// from day to day: every day has its own headline stories. Within a
// cohort, ranks are assigned randomly (popularity is independent of the
// exact publishing time and of page size, §4.2).
//
// Page.Rank is the global 1-based rank by request count; Page.Class
// groups pages so the request rate drops about one order of magnitude
// from one class to the next.
func assignPopularity(cfg Config, pages []Page, g *stats.RNG) ([]int, error) {
	// Group pages into day cohorts.
	cohorts := make(map[int][]int)
	days := make([]int, 0, cfg.Days)
	for i := range pages {
		d := int(pages[i].FirstPublish / HoursPerDay)
		if _, ok := cohorts[d]; !ok {
			days = append(days, d)
		}
		cohorts[d] = append(cohorts[d], i)
	}
	sort.Ints(days)

	counts := make([]int, len(pages))
	assigned := 0
	for idx, d := range days {
		cohort := cohorts[d]
		budget := cfg.TotalRequests * len(cohort) / len(pages)
		if idx == len(days)-1 {
			budget = cfg.TotalRequests - assigned
		}
		assigned += budget
		z, err := stats.NewZipf(len(cohort), cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("workload: cohort zipf: %w", err)
		}
		byRank, err := z.Counts(budget)
		if err != nil {
			return nil, fmt.Errorf("workload: cohort counts: %w", err)
		}
		perm := g.Perm(len(cohort))
		for r, pi := range perm {
			counts[cohort[pi]] = byRank[r]
		}
	}

	// Global ranks by descending count; classes by rate decade.
	order := make([]int, len(pages))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	maxCount := counts[order[0]]
	for rank, pi := range order {
		pages[pi].Rank = rank + 1
		class := 3
		if counts[pi] > 0 && maxCount > 0 {
			class = int(math.Floor(math.Log10(float64(maxCount) / float64(counts[pi]))))
		}
		if class < 0 {
			class = 0
		}
		if class > 3 {
			class = 3
		}
		pages[pi].Class = class
	}
	return counts, nil
}

// generateRequests builds the time-sorted request stream from per-page
// request counts.
func generateRequests(cfg Config, pages []Page, counts []int, g *stats.RNG) ([]Request, error) {
	horizon := cfg.Horizon()
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	requests := make([]Request, 0, cfg.TotalRequests)
	for pageID, count := range counts {
		if count == 0 {
			continue
		}
		p := &pages[pageID]
		times := requestTimes(p, count, horizon, g)
		servers := assignServers(cfg, p, count, maxCount, times, g)
		for i := range times {
			requests = append(requests, Request{Time: times[i], Page: pageID, Server: servers[i]})
		}
	}
	sort.Slice(requests, func(i, j int) bool {
		if requests[i].Time != requests[j].Time {
			return requests[i].Time < requests[j].Time
		}
		if requests[i].Page != requests[j].Page {
			return requests[i].Page < requests[j].Page
		}
		return requests[i].Server < requests[j].Server
	})
	return requests, nil
}

// requestTimes draws count request times for a page. Each request arrives
// at FirstPublish plus a truncated-Lomax age whose shape depends on the
// page's popularity class.
func requestTimes(p *Page, count int, horizon float64, g *stats.RNG) []float64 {
	remaining := horizon - p.FirstPublish
	if remaining <= 1e-6 {
		remaining = 1e-6
	}
	dist := ageDistByClass[p.Class]
	dist.Max = remaining
	times := make([]float64, count)
	for i := range times {
		t := p.FirstPublish + dist.Sample(g)
		if t >= horizon {
			t = horizon - 1e-9
		}
		times[i] = t
	}
	sort.Float64s(times)
	return times
}

// assignServers implements §4.2 "Splitting Requests by Server": the pool
// size for a page is Si = ceil(Servers * (Pi/Pmax)^0.5); each request day
// keeps cfg.ServerOverlap of the previous day's pool and replaces the rest
// with servers outside the pool. times must be ascending.
func assignServers(cfg Config, p *Page, count, maxCount int, times []float64, g *stats.RNG) []int {
	poolSize := int(math.Ceil(float64(cfg.Servers) * math.Sqrt(float64(count)/float64(maxCount))))
	if poolSize < 1 {
		poolSize = 1
	}
	if poolSize > cfg.Servers {
		poolSize = cfg.Servers
	}
	pool := g.Perm(cfg.Servers)[:poolSize]

	servers := make([]int, count)
	currentDay := int(times[0] / HoursPerDay)
	for i, t := range times {
		day := int(t / HoursPerDay)
		for currentDay < day {
			pool = rotatePool(cfg, pool, g)
			currentDay++
		}
		servers[i] = pool[g.Intn(len(pool))]
	}
	return servers
}

// rotatePool replaces (1 - overlap) of the pool with servers not currently
// in it, preserving the pool size.
func rotatePool(cfg Config, pool []int, g *stats.RNG) []int {
	keep := int(math.Round(cfg.ServerOverlap * float64(len(pool))))
	if keep > len(pool) {
		keep = len(pool)
	}
	replace := len(pool) - keep
	if replace == 0 || len(pool) == cfg.Servers {
		return pool
	}
	inPool := make(map[int]bool, len(pool))
	for _, s := range pool {
		inPool[s] = true
	}
	outside := make([]int, 0, cfg.Servers-len(pool))
	for s := 0; s < cfg.Servers; s++ {
		if !inPool[s] {
			outside = append(outside, s)
		}
	}
	g.Shuffle(len(outside), func(i, j int) { outside[i], outside[j] = outside[j], outside[i] })
	if replace > len(outside) {
		replace = len(outside)
	}
	next := make([]int, 0, len(pool))
	perm := g.Perm(len(pool))[:keep]
	for _, idx := range perm {
		next = append(next, pool[idx])
	}
	next = append(next, outside[:replace]...)
	// Top up if the outside population was too small to fully rotate.
	for _, s := range pool {
		if len(next) >= len(pool) {
			break
		}
		dup := false
		for _, n := range next {
			if n == s {
				dup = true
				break
			}
		}
		if !dup {
			next = append(next, s)
		}
	}
	return next
}
