package workload

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pubsubcd/internal/stats"
)

// Analysis summarises the distributional properties of a generated
// workload, mirroring the observations §4 builds on so a workload can be
// validated against the paper's construction.
type Analysis struct {
	// Publishing stream.
	DistinctPages     int
	Publications      int
	ModifiedPages     int
	ModifiedVersions  int
	VersionsPerPage   stats.Summary
	PageSizeBytes     stats.Summary
	InterPublishHours stats.Summary

	// Request stream.
	Requests           int
	RequestAgeHours    stats.Summary
	RequestsPerPage    stats.Summary
	TopPageShare       float64
	Top10Share         float64
	UniquePairs        int
	RequestsPerPair    float64
	ServersPerPage     stats.Summary
	RequestsPerServer  stats.Summary
	UniqueBytesServer  stats.Summary
	ClassRequestShares [4]float64

	// Subscriptions.
	TotalSubscriptions  int64
	SubsOverRequests    float64
	FalsePositivePairs  int
	NotificationBacked  float64 // fraction of requests with subs > 0 at their server
	SubsPerBackedPairAv float64
}

// Analyze computes the workload analysis.
func (w *Workload) Analyze() Analysis {
	var a Analysis
	a.DistinctPages = len(w.Pages)
	a.Publications = len(w.Publications)

	versions := make([]float64, 0, len(w.Pages))
	sizes := make([]float64, 0, len(w.Pages))
	for i := range w.Pages {
		if w.Pages[i].Versions > 1 {
			a.ModifiedPages++
			a.ModifiedVersions += w.Pages[i].Versions - 1
			versions = append(versions, float64(w.Pages[i].Versions))
		}
		sizes = append(sizes, float64(w.Pages[i].Size))
	}
	a.VersionsPerPage = stats.Summarize(versions)
	a.PageSizeBytes = stats.Summarize(sizes)

	if len(w.Publications) > 1 {
		gaps := make([]float64, 0, len(w.Publications)-1)
		for i := 1; i < len(w.Publications); i++ {
			gaps = append(gaps, w.Publications[i].Time-w.Publications[i-1].Time)
		}
		a.InterPublishHours = stats.Summarize(gaps)
	}

	a.Requests = len(w.Requests)
	ages := make([]float64, 0, len(w.Requests))
	perPage := make(map[int]int)
	pairs := make(map[[2]int]int)
	serversOf := make(map[int]map[int]bool)
	classCounts := [4]int{}
	for _, r := range w.Requests {
		ages = append(ages, r.Time-w.Pages[r.Page].FirstPublish)
		perPage[r.Page]++
		pairs[[2]int{r.Page, r.Server}]++
		if serversOf[r.Page] == nil {
			serversOf[r.Page] = make(map[int]bool)
		}
		serversOf[r.Page][r.Server] = true
		classCounts[w.Pages[r.Page].Class]++
	}
	a.RequestAgeHours = stats.Summarize(ages)
	counts := make([]float64, 0, len(perPage))
	for _, c := range perPage {
		counts = append(counts, float64(c))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	a.RequestsPerPage = stats.Summarize(counts)
	if len(counts) > 0 && a.Requests > 0 {
		a.TopPageShare = counts[0] / float64(a.Requests)
		top10 := 0.0
		for i := 0; i < 10 && i < len(counts); i++ {
			top10 += counts[i]
		}
		a.Top10Share = top10 / float64(a.Requests)
	}
	a.UniquePairs = len(pairs)
	if a.UniquePairs > 0 {
		a.RequestsPerPair = float64(a.Requests) / float64(a.UniquePairs)
	}
	spread := make([]float64, 0, len(serversOf))
	for _, set := range serversOf {
		spread = append(spread, float64(len(set)))
	}
	a.ServersPerPage = stats.Summarize(spread)
	reqPerServer := make([]float64, w.Config.Servers)
	for _, r := range w.Requests {
		reqPerServer[r.Server]++
	}
	a.RequestsPerServer = stats.Summarize(reqPerServer)
	ub := w.UniqueBytesPerServer()
	ubf := make([]float64, len(ub))
	for i, b := range ub {
		ubf[i] = float64(b)
	}
	a.UniqueBytesServer = stats.Summarize(ubf)
	if a.Requests > 0 {
		for c := 0; c < 4; c++ {
			a.ClassRequestShares[c] = float64(classCounts[c]) / float64(a.Requests)
		}
	}

	a.TotalSubscriptions = w.TotalSubscriptions()
	if a.Requests > 0 {
		a.SubsOverRequests = float64(a.TotalSubscriptions) / float64(a.Requests)
	}
	backed := 0
	backedPairs := 0
	var backedSubs int64
	for page, row := range w.Subscriptions {
		for server, s := range row {
			if s == 0 {
				continue
			}
			backedPairs++
			backedSubs += int64(s)
			if pairs[[2]int{page, server}] == 0 {
				a.FalsePositivePairs++
			}
		}
	}
	for pair, n := range pairs {
		if w.Subscriptions[pair[0]][pair[1]] > 0 {
			backed += n
		}
	}
	if a.Requests > 0 {
		a.NotificationBacked = float64(backed) / float64(a.Requests)
	}
	if backedPairs > 0 {
		a.SubsPerBackedPairAv = float64(backedSubs) / float64(backedPairs)
	}
	return a
}

// WriteText renders the analysis as a readable report.
func (a Analysis) WriteText(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Publishing stream\n"); err != nil {
		return err
	}
	if err := p("  distinct pages        %d\n", a.DistinctPages); err != nil {
		return err
	}
	if err := p("  publications          %d (%d modified versions of %d pages)\n",
		a.Publications, a.ModifiedVersions, a.ModifiedPages); err != nil {
		return err
	}
	if err := p("  versions/modified pg  mean %.1f max %.0f\n", a.VersionsPerPage.Mean, a.VersionsPerPage.Max); err != nil {
		return err
	}
	if err := p("  page size bytes       median %.0f mean %.0f p99 %.0f\n",
		a.PageSizeBytes.Median, a.PageSizeBytes.Mean, a.PageSizeBytes.P99); err != nil {
		return err
	}
	if err := p("Request stream\n"); err != nil {
		return err
	}
	if err := p("  requests              %d\n", a.Requests); err != nil {
		return err
	}
	if err := p("  request age hours     median %.1f p90 %.1f\n", a.RequestAgeHours.Median, a.RequestAgeHours.P90); err != nil {
		return err
	}
	if err := p("  top page share        %.1f%% (top-10: %.1f%%)\n", 100*a.TopPageShare, 100*a.Top10Share); err != nil {
		return err
	}
	if err := p("  unique (page,server)  %d pairs, %.1f requests/pair\n", a.UniquePairs, a.RequestsPerPair); err != nil {
		return err
	}
	if err := p("  servers per page      median %.0f max %.0f\n", a.ServersPerPage.Median, a.ServersPerPage.Max); err != nil {
		return err
	}
	if err := p("  requests per server   median %.0f\n", a.RequestsPerServer.Median); err != nil {
		return err
	}
	if err := p("  unique bytes/server   median %.0f\n", a.UniqueBytesServer.Median); err != nil {
		return err
	}
	if err := p("  class request shares  %.2f / %.2f / %.2f / %.2f\n",
		a.ClassRequestShares[0], a.ClassRequestShares[1], a.ClassRequestShares[2], a.ClassRequestShares[3]); err != nil {
		return err
	}
	if err := p("Subscriptions\n"); err != nil {
		return err
	}
	if err := p("  total                 %d (%.2fx requests)\n", a.TotalSubscriptions, a.SubsOverRequests); err != nil {
		return err
	}
	if err := p("  false-positive pairs  %d\n", a.FalsePositivePairs); err != nil {
		return err
	}
	return p("  notification-backed   %.1f%% of requests\n", 100*a.NotificationBacked)
}

// EffectiveZipfAlpha estimates the Zipf exponent of the per-page request
// counts by least-squares on log(rank) vs log(count) over the pages with
// at least minCount requests. It returns NaN when too few points exist.
func (a Analysis) EffectiveZipfAlpha(counts []int, minCount int) float64 {
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var xs, ys []float64
	for i, c := range sorted {
		if c < minCount {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(c)))
	}
	if len(xs) < 3 {
		return math.NaN()
	}
	// Least squares slope.
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN()
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}
