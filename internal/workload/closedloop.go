package workload

import (
	"fmt"
	"sort"

	"pubsubcd/internal/stats"
)

// DeriveClosedLoop builds a closed-loop request stream from a workload's
// subscriptions: the paper assumes "users only request pages based on
// notification" (§4.3), so instead of the open-loop trace (requests drawn
// first, subscriptions derived from them) this mode generates each
// request *from* a subscription — when a page is first published, every
// matching subscriber reads it with probability SQ after a popularity-
// class-dependent think delay, and re-reads later versions with the same
// probability scaled by the page's residual interest.
//
// The returned workload shares pages, publications and subscriptions with
// w but carries the regenerated request stream. It validates the
// open-loop construction: simulations on both streams should rank the
// strategies identically.
func DeriveClosedLoop(w *Workload, seed int64) (*Workload, error) {
	if w == nil {
		return nil, fmt.Errorf("workload: nil workload")
	}
	cfg := w.Config
	g := stats.NewRNG(seed).Split("closed-loop")
	horizon := cfg.Horizon()

	var requests []Request
	for page := range w.Pages {
		p := &w.Pages[page]
		delay := ageDistByClass[p.Class]
		remaining := horizon - p.FirstPublish
		if remaining <= 1e-6 {
			remaining = 1e-6
		}
		delay.Max = remaining
		for server, subCount := range w.Subscriptions[page] {
			for k := int32(0); k < subCount; k++ {
				if g.Float64() >= cfg.SQ {
					continue // this subscriber never reads the page
				}
				t := p.FirstPublish + delay.Sample(g)
				if t >= horizon {
					t = horizon - 1e-9
				}
				requests = append(requests, Request{Time: t, Page: page, Server: server})
			}
		}
	}
	sort.Slice(requests, func(i, j int) bool {
		if requests[i].Time != requests[j].Time {
			return requests[i].Time < requests[j].Time
		}
		if requests[i].Page != requests[j].Page {
			return requests[i].Page < requests[j].Page
		}
		return requests[i].Server < requests[j].Server
	})

	out := &Workload{
		Config:        cfg,
		Pages:         w.Pages,
		Publications:  w.Publications,
		Requests:      requests,
		Subscriptions: w.Subscriptions,
	}
	out.Config.TotalRequests = len(requests)
	return out, nil
}
