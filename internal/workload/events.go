package workload

import "sync"

// ServerEvent is one entry of a proxy server's private event stream: a
// matched publication routed to the server (Request == false) or a local
// user request (Request == true). The stream is ordered exactly as the
// server observes events in the global interleaved replay: ascending
// time, publications before requests at equal timestamps, and ties
// otherwise broken by position in the original streams.
//
// Version carries everything a shard needs from the global publication
// timeline: for a publication event it is the published version; for a
// request event it is the page version current at the request (the
// highest version published at or before it, with the same ≥0 floor the
// sequential simulator applies). Shards therefore replay without any
// shared mutable version state.
type ServerEvent struct {
	Time    float64
	Page    int32
	Version int32
	// Subs is the number of local subscriptions matching the page.
	Subs int32
	// Request distinguishes request events from publication events.
	Request bool
}

// EventView is a read-only decomposition of a workload into per-server
// event streams plus the per-server aggregates the simulator sizes
// caches from. It is the sharding substrate of the parallel simulator:
// each proxy's stream is self-contained (subscription counts and
// resolved versions are baked in), so per-server replays share nothing
// but immutable data.
//
// A view is built once per workload (see Workload.Events) and must not
// be mutated.
type EventView struct {
	// Streams[s] is server s's event stream. Publication events appear
	// only at servers with at least one matching subscription — exactly
	// the routing the matching engine performs in the sequential loop.
	Streams [][]ServerEvent
	// UniqueBytes[s] is the total size of the distinct pages server s
	// requests over the trace (the cache-sizing base of §5.1).
	UniqueBytes []int64
}

// Events returns the workload's event view, building and caching it on
// first use. It is safe for concurrent use; all callers observe the
// same immutable view.
func (w *Workload) Events() *EventView {
	w.eventsOnce.Do(func() { w.events = buildEventView(w) })
	return w.events
}

// buildEventView replays the global interleaved (publications, requests)
// merge once — the same order and version bookkeeping as the sequential
// simulator — and splits it into per-server streams.
func buildEventView(w *Workload) *EventView {
	servers := w.Config.Servers
	v := &EventView{
		Streams:     make([][]ServerEvent, servers),
		UniqueBytes: make([]int64, servers),
	}

	// Pre-count events per server so each stream is allocated exactly
	// once.
	counts := make([]int, servers)
	for _, p := range w.Publications {
		row := w.Subscriptions[p.Page]
		for s := 0; s < servers; s++ {
			if row[s] > 0 {
				counts[s]++
			}
		}
	}
	for _, r := range w.Requests {
		counts[r.Server]++
	}
	for s := range v.Streams {
		v.Streams[s] = make([]ServerEvent, 0, counts[s])
	}

	current := make([]int32, len(w.Pages))
	for i := range current {
		current[i] = -1 // not yet published
	}
	seen := make([]bool, len(w.Pages)*servers)
	pubs, reqs := w.Publications, w.Requests
	pi, ri := 0, 0
	for pi < len(pubs) || ri < len(reqs) {
		// Publications at the same timestamp precede requests (content
		// becomes available, then is read) — the sequential loop's rule.
		if pi < len(pubs) && (ri >= len(reqs) || pubs[pi].Time <= reqs[ri].Time) {
			p := pubs[pi]
			pi++
			if int32(p.Version) > current[p.Page] {
				current[p.Page] = int32(p.Version)
			}
			row := w.Subscriptions[p.Page]
			for s := 0; s < servers; s++ {
				if row[s] == 0 {
					continue
				}
				v.Streams[s] = append(v.Streams[s], ServerEvent{
					Time:    p.Time,
					Page:    int32(p.Page),
					Version: int32(p.Version),
					Subs:    row[s],
				})
			}
			continue
		}
		r := reqs[ri]
		ri++
		version := current[r.Page]
		if version < 0 {
			// Requests are generated after first publication, so this
			// only guards float boundary artifacts.
			version = 0
		}
		v.Streams[r.Server] = append(v.Streams[r.Server], ServerEvent{
			Time:    r.Time,
			Page:    int32(r.Page),
			Version: version,
			Subs:    w.Subscriptions[r.Page][r.Server],
			Request: true,
		})
		if !seen[r.Page*servers+r.Server] {
			seen[r.Page*servers+r.Server] = true
			v.UniqueBytes[r.Server] += w.Pages[r.Page].Size
		}
	}
	return v
}

// CacheCapacities returns per-server cache capacities in bytes for a
// capacity fraction, computed from the view's unique-byte totals.
// Servers that request nothing get a minimal 1-byte cache so the
// strategies stay well-defined.
func (v *EventView) CacheCapacities(fraction float64) []int64 {
	out := make([]int64, len(v.UniqueBytes))
	for i, u := range v.UniqueBytes {
		c := int64(float64(u) * fraction)
		if c < 1 {
			c = 1
		}
		out[i] = c
	}
	return out
}

// eventsCache is embedded in Workload to memoise the event view.
type eventsCache struct {
	eventsOnce sync.Once
	events     *EventView
}
