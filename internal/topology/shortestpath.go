package topology

import (
	"container/heap"
	"fmt"
	"math"

	"pubsubcd/internal/stats"
)

// ShortestPaths computes single-source shortest-path distances from src
// using Dijkstra's algorithm. Unreachable nodes get +Inf (the generator
// repairs connectivity, so this only happens on hand-built graphs).
func (gr *Graph) ShortestPaths(src int) ([]float64, error) {
	n := len(gr.Nodes)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("topology: source %d out of range [0, %d)", src, n)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		for _, e := range gr.adj[item.node] {
			if nd := item.dist + e.cost; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, nil
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// FetchCosts builds the per-proxy fetch-cost table the cache algorithms
// use. Node 0 is the publisher; nodes 1..N-1 are the proxies. Costs are
// shortest-path network distances normalised so that the mean cost is 1,
// keeping c(p) dimensionless as in the paper's value functions.
func FetchCosts(numProxies int, seed int64) ([]float64, error) {
	if numProxies < 1 {
		return nil, fmt.Errorf("topology: need at least one proxy, got %d", numProxies)
	}
	g := stats.NewRNG(seed)
	gr, err := NewWaxman(DefaultWaxman(numProxies+1), g)
	if err != nil {
		return nil, err
	}
	dist, err := gr.ShortestPaths(0)
	if err != nil {
		return nil, err
	}
	costs := make([]float64, numProxies)
	sum := 0.0
	for i := 0; i < numProxies; i++ {
		costs[i] = dist[i+1]
		sum += costs[i]
	}
	if sum <= 0 {
		// Degenerate single-point layout: fall back to unit costs.
		for i := range costs {
			costs[i] = 1
		}
		return costs, nil
	}
	mean := sum / float64(numProxies)
	for i := range costs {
		costs[i] /= mean
		if costs[i] <= 0 {
			costs[i] = 1e-6 // a proxy co-located with the publisher still pays a tiny cost
		}
	}
	return costs, nil
}
