package topology

import (
	"math"
	"testing"
	"testing/quick"

	"pubsubcd/internal/stats"
)

func TestNewWaxmanValidation(t *testing.T) {
	g := stats.NewRNG(1)
	tests := []struct {
		name string
		cfg  WaxmanConfig
		ok   bool
	}{
		{"valid", DefaultWaxman(10), true},
		{"zero nodes", WaxmanConfig{N: 0, Alpha: 0.15, Beta: 0.2, PlaneSize: 10}, false},
		{"bad alpha low", WaxmanConfig{N: 5, Alpha: 0, Beta: 0.2, PlaneSize: 10}, false},
		{"bad alpha high", WaxmanConfig{N: 5, Alpha: 1.5, Beta: 0.2, PlaneSize: 10}, false},
		{"bad beta", WaxmanConfig{N: 5, Alpha: 0.15, Beta: 0, PlaneSize: 10}, false},
		{"bad plane", WaxmanConfig{N: 5, Alpha: 0.15, Beta: 0.2, PlaneSize: -1}, false},
		{"single node", WaxmanConfig{N: 1, Alpha: 0.15, Beta: 0.2, PlaneSize: 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewWaxman(tt.cfg, g)
			if tt.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestWaxmanAlwaysConnected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := stats.NewRNG(seed)
		gr, err := NewWaxman(DefaultWaxman(101), g)
		if err != nil {
			t.Fatal(err)
		}
		if !gr.Connected() {
			t.Fatalf("seed %d: graph not connected", seed)
		}
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	a, err := NewWaxman(DefaultWaxman(50), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWaxman(DefaultWaxman(50), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func TestShortestPathsSimpleLine(t *testing.T) {
	// Hand-built line graph 0 -1- 1 -2- 2.
	gr := &Graph{
		Nodes: []Node{{ID: 0}, {ID: 1}, {ID: 2}},
		adj:   make([][]halfEdge, 3),
	}
	gr.addEdge(0, 1, 1)
	gr.addEdge(1, 2, 2)
	dist, err := gr.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %g, want %g", i, dist[i], want[i])
		}
	}
}

func TestShortestPathsPrefersCheaperRoute(t *testing.T) {
	// Triangle where the direct edge is more expensive than the detour.
	gr := &Graph{
		Nodes: []Node{{ID: 0}, {ID: 1}, {ID: 2}},
		adj:   make([][]halfEdge, 3),
	}
	gr.addEdge(0, 2, 10)
	gr.addEdge(0, 1, 1)
	gr.addEdge(1, 2, 1)
	dist, err := gr.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 2 {
		t.Errorf("dist[2] = %g, want 2 (via node 1)", dist[2])
	}
}

func TestShortestPathsInvalidSource(t *testing.T) {
	gr := &Graph{Nodes: []Node{{ID: 0}}, adj: make([][]halfEdge, 1)}
	if _, err := gr.ShortestPaths(-1); err == nil {
		t.Error("expected error for negative source")
	}
	if _, err := gr.ShortestPaths(1); err == nil {
		t.Error("expected error for out-of-range source")
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	gr := &Graph{Nodes: []Node{{ID: 0}, {ID: 1}}, adj: make([][]halfEdge, 2)}
	dist, err := gr.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[1], 1) {
		t.Errorf("unreachable node distance = %g, want +Inf", dist[1])
	}
}

func TestFetchCosts(t *testing.T) {
	costs, err := FetchCosts(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 100 {
		t.Fatalf("got %d costs, want 100", len(costs))
	}
	sum := 0.0
	for i, c := range costs {
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			t.Fatalf("cost[%d] = %g is not a positive finite value", i, c)
		}
		sum += c
	}
	mean := sum / 100
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("mean cost = %g, want 1 (normalised)", mean)
	}
}

func TestFetchCostsDeterministic(t *testing.T) {
	a, err := FetchCosts(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FetchCosts(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cost %d differs across identical seeds", i)
		}
	}
}

func TestFetchCostsValidation(t *testing.T) {
	if _, err := FetchCosts(0, 1); err == nil {
		t.Error("expected error for zero proxies")
	}
}

func TestConnectivityProperty(t *testing.T) {
	// Property: every generated graph is connected and every node has
	// degree >= 1 (for N >= 2).
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 2
		gr, err := NewWaxman(DefaultWaxman(n), stats.NewRNG(seed))
		if err != nil {
			return false
		}
		if !gr.Connected() {
			return false
		}
		for u := 0; u < n; u++ {
			if gr.Degree(u) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityOnShortestPaths(t *testing.T) {
	// Property: shortest-path distances satisfy d(0,v) <= d(0,u) + w(u,v)
	// for every edge (u, v).
	gr, err := NewWaxman(DefaultWaxman(80), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := gr.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range gr.Edges() {
		if dist[e.V] > dist[e.U]+e.Cost+1e-9 {
			t.Fatalf("relaxation violated for edge %+v", e)
		}
		if dist[e.U] > dist[e.V]+e.Cost+1e-9 {
			t.Fatalf("relaxation violated for edge %+v (reverse)", e)
		}
	}
}
