// Package topology builds BRITE-style random network topologies and
// computes the network distance from every proxy server to the publisher.
// The paper (§3.1) uses the network distance to the origin publisher as the
// cost c(p) to fetch a page at a given proxy, on a random graph built with
// BRITE. We reproduce BRITE's router-level Waxman model: nodes are placed
// uniformly in a plane and each pair (u, v) is connected with probability
//
//	P(u, v) = alpha * exp(-d(u, v) / (beta * L))
//
// where d is Euclidean distance and L the maximum possible distance. The
// generator then repairs connectivity by linking each disconnected
// component to its nearest connected neighbour, mimicking BRITE's
// incremental growth guarantee that the topology is connected.
package topology

import (
	"fmt"
	"math"

	"pubsubcd/internal/stats"
)

// Node is a router in the generated topology.
type Node struct {
	ID int
	X  float64
	Y  float64
}

// Edge is an undirected link with a propagation cost equal to the Euclidean
// distance between its endpoints.
type Edge struct {
	U, V int
	Cost float64
}

// Graph is an undirected weighted graph.
type Graph struct {
	Nodes []Node
	adj   [][]halfEdge
	edges []Edge
}

type halfEdge struct {
	to   int
	cost float64
}

// WaxmanConfig parameterises the Waxman random-graph model.
type WaxmanConfig struct {
	// N is the number of nodes (publisher + proxies). Must be >= 1.
	N int
	// Alpha scales the overall edge probability, in (0, 1].
	Alpha float64
	// Beta controls the relative likelihood of long edges, in (0, 1].
	Beta float64
	// PlaneSize is the side of the square the nodes are placed in.
	PlaneSize float64
}

// DefaultWaxman returns the Waxman parameters used by the simulator:
// BRITE's classic defaults (alpha=0.15, beta=0.2) on a 1000x1000 plane.
func DefaultWaxman(n int) WaxmanConfig {
	return WaxmanConfig{N: n, Alpha: 0.15, Beta: 0.2, PlaneSize: 1000}
}

// NewWaxman generates a connected Waxman random graph.
func NewWaxman(cfg WaxmanConfig, g *stats.RNG) (*Graph, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("topology: N must be >= 1, got %d", cfg.N)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("topology: Alpha must be in (0, 1], got %g", cfg.Alpha)
	}
	if cfg.Beta <= 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("topology: Beta must be in (0, 1], got %g", cfg.Beta)
	}
	if cfg.PlaneSize <= 0 {
		return nil, fmt.Errorf("topology: PlaneSize must be positive, got %g", cfg.PlaneSize)
	}
	gr := &Graph{
		Nodes: make([]Node, cfg.N),
		adj:   make([][]halfEdge, cfg.N),
	}
	for i := range gr.Nodes {
		gr.Nodes[i] = Node{ID: i, X: g.Float64() * cfg.PlaneSize, Y: g.Float64() * cfg.PlaneSize}
	}
	maxDist := cfg.PlaneSize * math.Sqrt2
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			d := gr.dist(u, v)
			p := cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))
			if g.Float64() < p {
				gr.addEdge(u, v, d)
			}
		}
	}
	gr.repairConnectivity()
	return gr, nil
}

func (gr *Graph) dist(u, v int) float64 {
	dx := gr.Nodes[u].X - gr.Nodes[v].X
	dy := gr.Nodes[u].Y - gr.Nodes[v].Y
	return math.Hypot(dx, dy)
}

func (gr *Graph) addEdge(u, v int, cost float64) {
	gr.adj[u] = append(gr.adj[u], halfEdge{to: v, cost: cost})
	gr.adj[v] = append(gr.adj[v], halfEdge{to: u, cost: cost})
	gr.edges = append(gr.edges, Edge{U: u, V: v, Cost: cost})
}

// repairConnectivity links every disconnected component to the nearest node
// of the growing connected component containing node 0.
func (gr *Graph) repairConnectivity() {
	n := len(gr.Nodes)
	if n <= 1 {
		return
	}
	comp := gr.components()
	for {
		// Nodes in node 0's component.
		root := comp[0]
		disconnected := -1
		for v := 0; v < n; v++ {
			if comp[v] != root {
				disconnected = v
				break
			}
		}
		if disconnected < 0 {
			return
		}
		// Link the closest pair (a in root component, b in the other
		// component containing `disconnected`).
		other := comp[disconnected]
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for a := 0; a < n; a++ {
			if comp[a] != root {
				continue
			}
			for b := 0; b < n; b++ {
				if comp[b] != other {
					continue
				}
				if d := gr.dist(a, b); d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		gr.addEdge(bestA, bestB, bestD)
		comp = gr.components()
	}
}

// components labels each node with a component representative.
func (gr *Graph) components() []int {
	n := len(gr.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = s
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range gr.adj[u] {
				if comp[e.to] < 0 {
					comp[e.to] = s
					stack = append(stack, e.to)
				}
			}
		}
	}
	return comp
}

// NumEdges returns the number of undirected edges.
func (gr *Graph) NumEdges() int { return len(gr.edges) }

// Edges returns a copy of the edge list.
func (gr *Graph) Edges() []Edge {
	out := make([]Edge, len(gr.edges))
	copy(out, gr.edges)
	return out
}

// Degree returns the degree of node u.
func (gr *Graph) Degree(u int) int { return len(gr.adj[u]) }

// Connected reports whether the graph is connected.
func (gr *Graph) Connected() bool {
	if len(gr.Nodes) == 0 {
		return true
	}
	comp := gr.components()
	for _, c := range comp {
		if c != comp[0] {
			return false
		}
	}
	return true
}
