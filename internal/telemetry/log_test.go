package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Error("ParseLogLevel accepted an unknown level")
	}
}

func TestNewLoggerRejectsBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "chatty", "text"); err == nil {
		t.Error("NewLogger accepted a bad level")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("NewLogger accepted a bad format")
	}
}

func TestLoggerLevelsFilter(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("should be filtered")
	logger.Warn("should appear")
	out := buf.String()
	if strings.Contains(out, "filtered") {
		t.Error("info record passed a warn-level logger")
	}
	if !strings.Contains(out, "should appear") {
		t.Error("warn record missing")
	}
}

func TestLoggerCorrelatesTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	c := NewSpanCollector(CollectorOptions{})
	ctx, sp := StartSpan(WithSpanCollector(context.Background(), c), "broker.publish")
	defer sp.End()

	logger.InfoContext(ctx, "page stored", "page", "p1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["trace_id"] != sp.Context().TraceID.String() {
		t.Errorf("trace_id = %v, want %s", rec["trace_id"], sp.Context().TraceID)
	}
	if rec["span_id"] != sp.Context().SpanID.String() {
		t.Errorf("span_id = %v, want %s", rec["span_id"], sp.Context().SpanID)
	}
	if rec["page"] != "p1" {
		t.Errorf("page attr = %v", rec["page"])
	}

	// Without a span in the context there must be no correlation noise.
	buf.Reset()
	logger.Info("no span here")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("uncorrelated record gained trace_id: %s", buf.String())
	}
}

func TestLoggerCorrelatesRemoteContext(t *testing.T) {
	// A record logged under a remote span context (trace parsed off the
	// wire, no local collector) still carries the IDs.
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	ctx := WithRemoteSpanContext(context.Background(), sc)
	logger.InfoContext(ctx, "bridged")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != sc.TraceID.String() || rec["span_id"] != sc.SpanID.String() {
		t.Errorf("remote correlation missing: %v", rec)
	}
}

func TestLoggerWithAttrsAndGroupKeepCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	c := NewSpanCollector(CollectorOptions{})
	ctx, sp := StartSpan(WithSpanCollector(context.Background(), c), "op")
	defer sp.End()

	derived := logger.With("component", "uplink").WithGroup("conn")
	derived.InfoContext(ctx, "redial", "attempt", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "uplink" {
		t.Errorf("With attr lost: %v", rec)
	}
	conn, _ := rec["conn"].(map[string]any)
	if conn == nil || conn["attempt"] != float64(3) {
		t.Errorf("group lost: %v", rec)
	}
	if conn["trace_id"] != sp.Context().TraceID.String() {
		t.Errorf("correlation under group: %v", rec)
	}
}
