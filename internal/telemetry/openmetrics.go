package telemetry

// Prometheus / OpenMetrics text exposition for Snapshot. The registry's
// dot-separated metric names are sanitised to the exposition alphabet
// (dots and dashes become underscores), labeled series keys produced by
// the vecs are already in exposition syntax, and histograms are
// re-rendered as cumulative le-buckets with _sum and _count. The
// OpenMetrics flavor additionally carries trace-ID exemplars on bucket
// lines and the terminating # EOF marker, so a scraped latency bucket
// links straight to a retained span tree on /trace/{id}.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// expositionFlavor selects between the classic Prometheus text format
// (0.0.4) and OpenMetrics 1.0.
type expositionFlavor int

const (
	flavorPrometheus expositionFlavor = iota
	flavorOpenMetrics
)

// Content types served by the /metrics handler for each flavor.
const (
	ContentTypePrometheus  = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// WritePrometheus renders the snapshot in the Prometheus text format
// (version 0.0.4): # TYPE comments, plain counter names, cumulative
// histogram buckets.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return s.writeExposition(w, flavorPrometheus)
}

// WriteOpenMetrics renders the snapshot as OpenMetrics 1.0: counters
// gain the _total suffix, histogram buckets carry exemplars for traced
// samples, and the stream ends with # EOF.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	return s.writeExposition(w, flavorOpenMetrics)
}

// SanitizeMetricName maps a registry metric name onto the exposition
// name alphabet [a-zA-Z0-9_:], replacing every other byte with '_' and
// prefixing a leading digit with '_'.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// series is one exposition sample: the sanitised family name, the
// rendered label body ("" or `{l="v"}`-style without the braces), and
// the value.
type series struct {
	labels string // label pairs without braces, "" when unlabeled
	value  int64
	hist   *HistogramSnapshot
}

// splitKey splits a registry key into its metric name and raw label
// body (without braces); "" when the key is unlabeled.
func splitKey(key string) (name, labelBody string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// collectFamilies groups the given keys by sanitised family name.
func collectFamilies[V any](m map[string]V, add func(fam *family, labelBody string, v V)) map[string]*family {
	fams := make(map[string]*family)
	for key, v := range m {
		name, labelBody := splitKey(key)
		san := SanitizeMetricName(name)
		fam := fams[san]
		if fam == nil {
			fam = &family{name: san}
			fams[san] = fam
		}
		add(fam, labelBody, v)
	}
	return fams
}

type family struct {
	name   string
	series []series
}

func (f *family) sorted() []series {
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return f.series
}

func sortedFamilies(fams map[string]*family) []*family {
	out := make([]*family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatBound renders a bucket bound as an le label value.
func formatBound(b int64) string {
	return strconv.FormatFloat(float64(b), 'g', -1, 64)
}

func (s Snapshot) writeExposition(w io.Writer, flavor expositionFlavor) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	// Counters.
	counterFams := collectFamilies(s.Counters, func(f *family, labelBody string, v int64) {
		f.series = append(f.series, series{labels: labelBody, value: v})
	})
	for _, fam := range sortedFamilies(counterFams) {
		if err := p("# TYPE %s counter\n", fam.name); err != nil {
			return err
		}
		name := fam.name
		if flavor == flavorOpenMetrics {
			name += "_total"
		}
		for _, sr := range fam.sorted() {
			if err := p("%s%s %d\n", name, braced(sr.labels), sr.value); err != nil {
				return err
			}
		}
	}
	// Gauges.
	gaugeFams := collectFamilies(s.Gauges, func(f *family, labelBody string, v int64) {
		f.series = append(f.series, series{labels: labelBody, value: v})
	})
	for _, fam := range sortedFamilies(gaugeFams) {
		if err := p("# TYPE %s gauge\n", fam.name); err != nil {
			return err
		}
		for _, sr := range fam.sorted() {
			if err := p("%s%s %d\n", fam.name, braced(sr.labels), sr.value); err != nil {
				return err
			}
		}
	}
	// Histograms: cumulative buckets, +Inf, _sum, _count, exemplars on
	// the OpenMetrics flavor.
	histFams := collectFamilies(s.Histograms, func(f *family, labelBody string, v HistogramSnapshot) {
		h := v
		f.series = append(f.series, series{labels: labelBody, hist: &h})
	})
	for _, fam := range sortedFamilies(histFams) {
		if err := p("# TYPE %s histogram\n", fam.name); err != nil {
			return err
		}
		for _, sr := range fam.sorted() {
			if err := writeHistogramSeries(p, fam.name, sr, flavor); err != nil {
				return err
			}
		}
	}
	if flavor == flavorOpenMetrics {
		return p("# EOF\n")
	}
	return nil
}

// braced wraps a non-empty label body in braces.
func braced(labelBody string) string {
	if labelBody == "" {
		return ""
	}
	return "{" + labelBody + "}"
}

// bucketLabels merges the series labels with an le pair.
func bucketLabels(labelBody, le string) string {
	if labelBody == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labelBody + `,le="` + le + `"}`
}

func writeHistogramSeries(p func(string, ...any) error, name string, sr series, flavor expositionFlavor) error {
	h := sr.hist
	exemplarFor := func(bucket int) string {
		if flavor != flavorOpenMetrics {
			return ""
		}
		for _, e := range h.Exemplars {
			if e.Bucket == bucket {
				return fmt.Sprintf(" # {trace_id=\"%s\"} %d %.3f",
					e.TraceID, e.Value, float64(e.Time.UnixMilli())/1000)
			}
		}
		return ""
	}
	var cum int64
	for i, bound := range h.Bounds {
		if i >= len(h.Counts) {
			break
		}
		cum += h.Counts[i]
		if err := p("%s_bucket%s %d%s\n",
			name, bucketLabels(sr.labels, formatBound(bound)), cum, exemplarFor(i)); err != nil {
			return err
		}
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	if err := p("%s_bucket%s %d%s\n",
		name, bucketLabels(sr.labels, "+Inf"), cum, exemplarFor(len(h.Bounds))); err != nil {
		return err
	}
	if err := p("%s_sum%s %d\n", name, braced(sr.labels), h.Sum); err != nil {
		return err
	}
	return p("%s_count%s %d\n", name, braced(sr.labels), h.Count)
}

// AddRuntime injects the Go runtime's health metrics into the snapshot
// as gauges (go.goroutines, go.heap_alloc_bytes, go.gc_pause_total_ns,
// …), so every exposition flavor — and the fleet scraper's per-node
// breakdown — carries process vitals alongside the application metrics.
func (s Snapshot) AddRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Gauges["go.goroutines"] = int64(runtime.NumGoroutine())
	s.Gauges["go.gomaxprocs"] = int64(runtime.GOMAXPROCS(0))
	s.Gauges["go.heap_alloc_bytes"] = int64(ms.HeapAlloc)
	s.Gauges["go.heap_sys_bytes"] = int64(ms.HeapSys)
	s.Gauges["go.heap_objects"] = int64(ms.HeapObjects)
	s.Gauges["go.gc_cycles"] = int64(ms.NumGC)
	s.Gauges["go.gc_pause_total_ns"] = int64(ms.PauseTotalNs)
	if ms.NumGC > 0 {
		s.Gauges["go.gc_pause_last_ns"] = int64(ms.PauseNs[(ms.NumGC+255)%256])
	}
}
