package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func adminGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestAdminServerMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("broker.publishes").Add(42)
	reg.Histogram("broker.match_ns", LatencyBuckets()).Observe(1500)
	tr := NewTracer(16)
	tr.Record(KindPublish, "page-1", -1, "v0")
	tr.Record(KindPush, "page-1", 2, "stored")
	tr.Record(KindPublish, "page-2", -1, "v0")

	s, err := NewAdminServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := adminGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["broker.publishes"] != 42 {
		t.Errorf("metrics counter = %d, want 42", snap.Counters["broker.publishes"])
	}
	if snap.Histograms["broker.match_ns"].Count != 1 {
		t.Errorf("metrics histogram count = %d", snap.Histograms["broker.match_ns"].Count)
	}

	code, body = adminGet(t, base+"/metrics?text=1")
	if code != http.StatusOK || !strings.Contains(string(body), "broker.publishes") {
		t.Errorf("/metrics?text=1 status %d body %q", code, body)
	}

	code, body = adminGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var events []TraceEvent
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(events) != 3 {
		t.Errorf("/trace returned %d events, want 3", len(events))
	}

	code, body = adminGet(t, base+"/trace?page=page-1&n=1")
	if code != http.StatusOK {
		t.Fatalf("/trace filtered status %d", code)
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindPush {
		t.Errorf("filtered trace = %+v, want single push event", events)
	}

	code, _ = adminGet(t, base+"/trace?n=bogus")
	if code != http.StatusBadRequest {
		t.Errorf("bad n should 400, got %d", code)
	}
}

func TestAdminServerPprof(t *testing.T) {
	s, err := NewAdminServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	code, body := adminGet(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, _ = adminGet(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Errorf("goroutine profile status %d", code)
	}
	// Nil registry/tracer endpoints still answer.
	code, _ = adminGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics with nil registry status %d", code)
	}
	code, _ = adminGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Errorf("/trace with nil tracer status %d", code)
	}
}

func TestAdminServerBadAddr(t *testing.T) {
	if _, err := NewAdminServer("256.256.256.256:1", nil, nil); err == nil {
		t.Error("bad address should error")
	}
}
