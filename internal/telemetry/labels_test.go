package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("req.total", "strategy", "outcome")
	vec.With("GD*", "hit").Add(3)
	vec.With("GD*", "miss").Inc()
	vec.With("GD*", "hit").Inc()

	snap := r.Snapshot()
	if got := snap.Counters[`req.total{strategy="GD*",outcome="hit"}`]; got != 4 {
		t.Errorf("hit series = %d, want 4", got)
	}
	if got := snap.Counters[`req.total{strategy="GD*",outcome="miss"}`]; got != 1 {
		t.Errorf("miss series = %d, want 1", got)
	}
	if r.CounterVec("req.total", "strategy", "outcome") != vec {
		t.Error("re-registering a vec should return the same instance")
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	r.CounterVec("x", "l").With("v").Inc()
	r.GaugeVec("y", "l").With("v").Set(3)
	r.HistogramVec("z", LatencyBuckets(), "l").With("v").Observe(5)
	var cv *CounterVec
	cv.With("v").Inc() // must not panic
}

func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("a", "l1", "l2")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label-value count")
		}
	}()
	vec.With("only-one")
}

func TestVecCardinalityBudget(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVecBounded("topics", 4, "topic")
	for i := 0; i < 10; i++ {
		vec.With(fmt.Sprintf("t%d", i)).Inc()
	}
	snap := r.Snapshot()
	// 4 real series plus one overflow series absorbing the rest.
	var real, overflow int64
	for key, v := range snap.Counters {
		name, labels := ParseSeries(key)
		if name != "topics" {
			continue
		}
		if labels["topic"] == LabelOverflow {
			overflow += v
			continue
		}
		real++
	}
	if real != 4 {
		t.Errorf("real series = %d, want 4", real)
	}
	if overflow != 6 {
		t.Errorf("overflow observations = %d, want 6", overflow)
	}
	if got := snap.Counters[overflowCounterName]; got != 6 {
		t.Errorf("%s = %d, want 6", overflowCounterName, got)
	}
}

func TestVecConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("conc", "worker")
	gvec := r.GaugeVec("conc.g", "worker")
	hvec := r.HistogramVec("conc.h", CountBuckets(), "worker")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4) // deliberate sharing across goroutines
			for i := 0; i < perWorker; i++ {
				vec.With(label).Inc()
				gvec.With(label).Set(int64(i))
				hvec.With(label).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for key, v := range snap.Counters {
		if name, _ := ParseSeries(key); name == "conc" {
			total += v
		}
	}
	if want := int64(workers * perWorker); total != want {
		t.Errorf("summed counter series = %d, want %d", total, want)
	}
}

func TestRenderParseSeriesRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		values []string
	}{
		{"plain", []string{"l"}, []string{"v"}},
		{"multi", []string{"a", "b"}, []string{"x", "y"}},
		{"escapes", []string{"l"}, []string{`qu"ote\back` + "\nline"}},
		{"strategy", []string{"strategy"}, []string{"GD*"}},
		{"empty.value", []string{"l"}, []string{""}},
		{"trailing.backslash", []string{"l"}, []string{`ends\`}},
		{"double.backslash", []string{"l"}, []string{`a\\b`}},
		{"literal.backslash.n", []string{"l"}, []string{`not\na\newline`}},
		{"only.newlines", []string{"l"}, []string{"\n\n"}},
		{"quote.at.edges", []string{"l"}, []string{`"quoted"`}},
		{"structural.bytes", []string{"l"}, []string{`a="b",c}{d`}},
		{"mixed.per.label", []string{"a", "b"}, []string{`x"`, "y\nz"}},
		{"unicode", []string{"l"}, []string{"snö∆\t页"}},
	}
	for _, c := range cases {
		key := RenderSeries(c.name, c.labels, c.values)
		name, labels := ParseSeries(key)
		if name != c.name {
			t.Errorf("ParseSeries(%q) name = %q, want %q", key, name, c.name)
		}
		for i, l := range c.labels {
			if got := labels[l]; got != c.values[i] {
				t.Errorf("ParseSeries(%q)[%q] = %q, want %q", key, l, got, c.values[i])
			}
		}
	}
	if name, labels := ParseSeries("no.labels"); name != "no.labels" || labels != nil {
		t.Errorf("unlabeled key parsed to %q / %v", name, labels)
	}
}

// FuzzSeriesRoundTrip drives arbitrary label values — quotes,
// backslashes, newlines, and every escaping edge the fuzzer invents —
// through RenderSeries and back through ParseSeries. The series key is
// the registry's storage format, so a value that fails to round-trip
// would silently corrupt scraped breakdowns.
func FuzzSeriesRoundTrip(f *testing.F) {
	f.Add("v", "w")
	f.Add(`qu"ote`, `back\slash`)
	f.Add("new\nline", "\n")
	f.Add(`ends\`, `\\`)
	f.Add(`not\na\newline`, `a="b",c}{d`)
	f.Add("", `"`)
	f.Fuzz(func(t *testing.T, v1, v2 string) {
		key := RenderSeries("fuzz.series", []string{"a", "b"}, []string{v1, v2})
		name, labels := ParseSeries(key)
		if name != "fuzz.series" {
			t.Fatalf("name %q from key %q", name, key)
		}
		if labels["a"] != v1 || labels["b"] != v2 {
			t.Fatalf("round-trip (%q, %q) -> %q -> (%q, %q)", v1, v2, key, labels["a"], labels["b"])
		}
	})
}

// BenchmarkCounterInc / BenchmarkCounterVecWith quantify the labeled
// hot-path premium: resolving a series through a vec versus a
// pre-resolved counter handle.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.plain")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	vec := r.CounterVec("bench.labeled", "strategy")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("GD*").Inc()
	}
}

// BenchmarkCounterVecPreResolved is the hot-path pattern the
// instrumentation actually uses (StrategyMetrics, proxy counters):
// resolve the series once, keep the *Counter, pay nothing per Inc.
func BenchmarkCounterVecPreResolved(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench.labeled", "strategy").With("GD*")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
