package telemetry

// Labeled metric vectors. A vector ("vec") is a family of metrics that
// share a name and differ in label values: proxy.fetch_errors{proxy="3"},
// broker.publishes_by_topic{topic="news"},
// sim.strategy.hits{strategy="GD*"}. Each distinct label-value
// combination is one ordinary Counter/Gauge/Histogram registered in the
// owning Registry under its rendered series key, so snapshots, the JSON
// endpoint, the fleet merger and WriteSummary all see labeled series
// with zero extra plumbing.
//
// Cardinality is bounded per vec: once MaxSeries distinct combinations
// exist, further combinations collapse into a single overflow series
// whose every label value is LabelOverflow, and the registry-level
// telemetry.labels.overflow counter ticks once per collapsed
// observation. The bound keeps a hostile or high-entropy label (topic
// names, page IDs) from growing the registry without limit — the
// label/cardinality budget is part of the metric's contract, not a
// runtime surprise.
//
// Series keys use the Prometheus/OpenMetrics exposition syntax
// (name{label="value",...}, values escaped) with labels in the order
// the vec declared them, so the text exporter can emit a stored key
// verbatim and ParseSeries can split any key back into name + labels.

import (
	"sort"
	"strings"
	"sync"
)

// DefaultMaxSeries is the per-vec cardinality budget used when a vec is
// created without an explicit bound.
const DefaultMaxSeries = 256

// LabelOverflow is the label value carried by a vec's overflow series —
// the series that absorbs every label combination past the cardinality
// budget.
const LabelOverflow = "~overflow~"

// overflowCounterName counts observations that landed in any vec's
// overflow series because the cardinality budget was exhausted.
const overflowCounterName = "telemetry.labels.overflow"

// vecCore is the label bookkeeping shared by the three vec kinds: the
// declared label names, the bounded series map keyed by the raw joined
// label values, and the rendered series key for each new combination.
type vecCore struct {
	name   string
	labels []string
	max    int

	mu     sync.RWMutex
	series map[string]string // joined raw values -> rendered series key
}

func newVecCore(name string, labels []string, max int) *vecCore {
	if len(labels) == 0 {
		panic("telemetry: a vec needs at least one label")
	}
	if max <= 0 {
		max = DefaultMaxSeries
	}
	return &vecCore{
		name:   name,
		labels: labels,
		max:    max,
		series: make(map[string]string),
	}
}

// joinValues builds the internal lookup key for a label-value
// combination. \xff cannot appear in a UTF-8 label value's first byte
// position legitimately enough to matter here; collisions would only
// merge two series, never corrupt memory.
func joinValues(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\xff")
}

// resolve maps a label-value combination to its rendered series key,
// creating it (or the overflow series) under the cardinality budget.
// The second return is true when the combination overflowed.
func (v *vecCore) resolve(values []string) (string, bool) {
	if len(values) != len(v.labels) {
		panic("telemetry: vec " + v.name + " got wrong number of label values")
	}
	raw := joinValues(values)
	v.mu.RLock()
	key, ok := v.series[raw]
	v.mu.RUnlock()
	if ok {
		return key, false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if key, ok = v.series[raw]; ok {
		return key, false
	}
	if len(v.series) >= v.max {
		// Budget exhausted: collapse into the overflow series. It is
		// not stored in v.series, so the budget stays exactly max real
		// combinations plus one overflow.
		over := make([]string, len(v.labels))
		for i := range over {
			over[i] = LabelOverflow
		}
		return RenderSeries(v.name, v.labels, over), true
	}
	key = RenderSeries(v.name, v.labels, values)
	v.series[raw] = key
	return key, false
}

// RenderSeries builds the canonical series key
// name{l1="v1",l2="v2",...} with label values escaped per the
// Prometheus text format (backslash, double quote, newline).
func RenderSeries(name string, labels, values []string) string {
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		escapeLabelValue(&b, values[i])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// ParseSeries splits a series key back into its metric name and label
// pairs. A key without labels returns the name and a nil map. Labels
// are returned in a map; ordered access is not needed by any reader.
// Malformed keys return the whole key as the name — the function is
// total, matching how keys are only ever produced by RenderSeries.
func ParseSeries(key string) (name string, labels map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:i]
	body := key[i+1 : len(key)-1]
	labels = make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return key, nil
		}
		label := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		j := 0
		for ; j < len(rest); j++ {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				j++
				switch rest[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[j])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(rest) {
			return key, nil
		}
		labels[label] = val.String()
		body = rest[j+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return name, labels
}

// CounterVec is a family of counters sharing one name, differing in
// label values. Obtain one from Registry.CounterVec; resolve series
// with With. Nil-safe like the scalar metrics: a nil vec hands out
// detached counters.
type CounterVec struct {
	reg  *Registry
	core *vecCore
}

// With returns the counter for the given label values (one per declared
// label, in declaration order), creating the series on first use.
// Past the cardinality budget it returns the vec's overflow counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return &Counter{}
	}
	key, overflowed := v.core.resolve(values)
	if overflowed {
		v.reg.Counter(overflowCounterName).Inc()
	}
	return v.reg.Counter(key)
}

// GaugeVec is a family of gauges; see CounterVec.
type GaugeVec struct {
	reg  *Registry
	core *vecCore
}

// With returns the gauge for the given label values; see
// CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return &Gauge{}
	}
	key, overflowed := v.core.resolve(values)
	if overflowed {
		v.reg.Counter(overflowCounterName).Inc()
	}
	return v.reg.Gauge(key)
}

// HistogramVec is a family of histograms sharing one name and bucket
// layout; see CounterVec.
type HistogramVec struct {
	reg    *Registry
	core   *vecCore
	bounds []int64
}

// With returns the histogram for the given label values; see
// CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return NewHistogram(LatencyBuckets())
	}
	key, overflowed := v.core.resolve(values)
	if overflowed {
		v.reg.Counter(overflowCounterName).Inc()
	}
	return v.reg.Histogram(key, v.bounds)
}

// vecSpec fixes a vec's identity for re-registration: same name must
// mean same labels, so independent components can share a vec by name
// exactly like they share scalar counters.
type vecSpec struct {
	labels []string
	max    int
	vec    any
}

// CounterVec returns the counter vec with the given name and labels,
// creating it with the DefaultMaxSeries cardinality budget if needed.
// Re-registering an existing name returns the existing vec (labels and
// budget of the first registration win). Safe on a nil registry.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	return r.CounterVecBounded(name, 0, labels...)
}

// CounterVecBounded is CounterVec with an explicit per-vec series
// budget (0 means DefaultMaxSeries).
func (r *Registry) CounterVecBounded(name string, maxSeries int, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	spec := r.vec(name, labels, maxSeries, func(core *vecCore) any {
		return &CounterVec{reg: r, core: core}
	})
	v, _ := spec.(*CounterVec)
	return v
}

// GaugeVec returns the gauge vec with the given name and labels; see
// CounterVec.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	spec := r.vec(name, labels, 0, func(core *vecCore) any {
		return &GaugeVec{reg: r, core: core}
	})
	v, _ := spec.(*GaugeVec)
	return v
}

// HistogramVec returns the histogram vec with the given name, bucket
// bounds and labels; see CounterVec. Bounds of the first registration
// win.
func (r *Registry) HistogramVec(name string, bounds []int64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	spec := r.vec(name, labels, 0, func(core *vecCore) any {
		return &HistogramVec{reg: r, core: core, bounds: bounds}
	})
	v, _ := spec.(*HistogramVec)
	return v
}

// vec looks up or creates the vec registered under name.
func (r *Registry) vec(name string, labels []string, maxSeries int, build func(*vecCore) any) any {
	r.mu.RLock()
	spec, ok := r.vecs[name]
	r.mu.RUnlock()
	if ok {
		return spec.vec
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if spec, ok := r.vecs[name]; ok {
		return spec.vec
	}
	core := newVecCore(name, append([]string(nil), labels...), maxSeries)
	v := build(core)
	r.vecs[name] = &vecSpec{labels: core.labels, max: core.max, vec: v}
	return v
}

// VecNames returns the registered vec family names, sorted — the
// exposition writer uses this to group a family's series under one
// TYPE line even before any series exists.
func (r *Registry) VecNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.vecs))
	for name := range r.vecs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
