package telemetry

// Structured logging on top of log/slog, correlated with the tracing
// subsystem: every log record emitted with a context that carries an
// active span (or a remote span context parsed off the wire) gains
// trace_id/span_id attributes, so logs and traces cross-reference in
// both directions.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel parses the -log-level flag enum: debug, info, warn or
// error.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf(`telemetry: invalid log level %q (want "debug", "info", "warn" or "error")`, s)
	}
}

// NewLogger builds a leveled slog.Logger writing to w. format selects
// the handler: "text" for human-readable key=value lines, "json" for
// one JSON object per line. Records logged with a context carrying a
// span are annotated with trace_id and span_id.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf(`telemetry: invalid log format %q (want "text" or "json")`, format)
	}
	return slog.New(&correlatedHandler{inner: h}), nil
}

// correlatedHandler decorates records with the trace correlation fields
// from the context.
type correlatedHandler struct {
	inner slog.Handler
}

func (h *correlatedHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *correlatedHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := SpanContextFromContext(ctx); sc.Valid() {
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h *correlatedHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &correlatedHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *correlatedHandler) WithGroup(name string) slog.Handler {
	return &correlatedHandler{inner: h.inner.WithGroup(name)}
}
