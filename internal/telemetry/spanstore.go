package telemetry

// The SpanCollector: bounded in-memory storage for span trees. Traces
// accumulate while any of their spans is open; when the last open span
// ends the trace is finalised and pushed into three retention rings —
// the most recent traces, the slowest N (by end-to-end duration, the
// tail-latency evidence), and traces containing an errored span. All
// bounds are hard: a collector never grows past its configured limits,
// whatever the traffic does.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanData is one completed span as stored and served by the collector.
type SpanData struct {
	TraceID  TraceID       `json:"traceId"`
	SpanID   SpanID        `json:"spanId"`
	ParentID SpanID        `json:"parentId,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// TraceData is one finalised trace: its spans in start order plus the
// derived summary fields the admin views list.
type TraceData struct {
	TraceID TraceID `json:"traceId"`
	// Root is the name of the trace's root span (the earliest span whose
	// parent is unknown locally).
	Root  string    `json:"root"`
	Start time.Time `json:"start"`
	// Duration spans the earliest start to the latest end across all
	// spans.
	Duration time.Duration `json:"durationNs"`
	Spans    []SpanData    `json:"spans"`
	// Err reports whether any span recorded an error.
	Err bool `json:"err"`
	// Truncated reports whether the per-trace span bound dropped spans.
	Truncated bool `json:"truncated,omitempty"`
}

// CollectorStats counts the collector's traffic and shedding.
type CollectorStats struct {
	SpansStarted   uint64 `json:"spansStarted"`
	SpansCompleted uint64 `json:"spansCompleted"`
	// SpansDropped counts spans shed by the per-trace bound or arriving
	// for an already-finalised trace.
	SpansDropped uint64 `json:"spansDropped"`
	// TracesCompleted counts finalised traces.
	TracesCompleted uint64 `json:"tracesCompleted"`
	// TracesEvicted counts active traces shed because the active-trace
	// bound was hit.
	TracesEvicted uint64 `json:"tracesEvicted"`
	ActiveTraces  int    `json:"activeTraces"`
}

// CollectorOptions bounds a SpanCollector. Zero fields take defaults.
type CollectorOptions struct {
	// MaxActiveTraces bounds traces with open spans (default 256).
	MaxActiveTraces int
	// MaxSpansPerTrace bounds spans retained per trace (default 512).
	MaxSpansPerTrace int
	// KeepRecent bounds the most-recent retention ring (default 64).
	KeepRecent int
	// KeepSlowest bounds the slowest-trace retention (default 16).
	KeepSlowest int
	// KeepErrors bounds the errored-trace retention ring (default 32).
	KeepErrors int
}

func (o CollectorOptions) withDefaults() CollectorOptions {
	if o.MaxActiveTraces <= 0 {
		o.MaxActiveTraces = 256
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	if o.KeepRecent <= 0 {
		o.KeepRecent = 64
	}
	if o.KeepSlowest <= 0 {
		o.KeepSlowest = 16
	}
	if o.KeepErrors <= 0 {
		o.KeepErrors = 32
	}
	return o
}

// activeTrace is a trace still accumulating spans.
type activeTrace struct {
	spans     []SpanData
	open      int
	truncated bool
}

// SpanCollector receives completed spans and retains bounded trace
// trees. All methods are safe for concurrent use; a nil collector
// ignores everything.
type SpanCollector struct {
	opts CollectorOptions

	mu     sync.Mutex
	active map[TraceID]*activeTrace
	// order lists active trace IDs oldest-first for bounded eviction.
	order   []TraceID
	recent  []*TraceData // ring, newest last
	slowest []*TraceData // ascending by duration, len <= KeepSlowest
	errored []*TraceData // ring, newest last
	stats   CollectorStats
}

// NewSpanCollector returns a collector with the given bounds (zero
// fields take documented defaults).
func NewSpanCollector(opts CollectorOptions) *SpanCollector {
	return &SpanCollector{
		opts:   opts.withDefaults(),
		active: make(map[TraceID]*activeTrace),
	}
}

// spanStarted registers an open span so the trace finalises only when
// every started span has ended.
func (c *SpanCollector) spanStarted(tid TraceID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.SpansStarted++
	t := c.active[tid]
	if t == nil {
		if len(c.active) >= c.opts.MaxActiveTraces {
			c.evictOldestLocked()
		}
		t = &activeTrace{}
		c.active[tid] = t
		c.order = append(c.order, tid)
	}
	t.open++
	c.mu.Unlock()
}

// evictOldestLocked finalises the oldest active trace as-is to make
// room. Caller holds c.mu.
func (c *SpanCollector) evictOldestLocked() {
	for len(c.order) > 0 {
		tid := c.order[0]
		c.order = c.order[1:]
		t, ok := c.active[tid]
		if !ok {
			continue
		}
		delete(c.active, tid)
		c.stats.TracesEvicted++
		if len(t.spans) > 0 {
			c.retainLocked(tid, t)
		}
		return
	}
}

// spanEnded records a completed span and finalises its trace when no
// spans remain open.
func (c *SpanCollector) spanEnded(data SpanData) {
	if c == nil {
		return
	}
	c.mu.Lock()
	t := c.active[data.TraceID]
	if t == nil {
		// The trace was finalised or evicted while this span ran.
		c.stats.SpansDropped++
		c.mu.Unlock()
		return
	}
	if len(t.spans) < c.opts.MaxSpansPerTrace {
		t.spans = append(t.spans, data)
		c.stats.SpansCompleted++
	} else {
		t.truncated = true
		c.stats.SpansDropped++
	}
	t.open--
	if t.open <= 0 {
		delete(c.active, data.TraceID)
		c.removeOrderLocked(data.TraceID)
		c.retainLocked(data.TraceID, t)
		c.stats.TracesCompleted++
	}
	c.mu.Unlock()
}

// removeOrderLocked drops tid from the active-order queue.
func (c *SpanCollector) removeOrderLocked(tid TraceID) {
	for i, id := range c.order {
		if id == tid {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// retainLocked finalises a trace into the retention rings. Caller holds
// c.mu.
func (c *SpanCollector) retainLocked(tid TraceID, t *activeTrace) {
	td := buildTrace(tid, t.spans)
	td.Truncated = t.truncated
	c.recent = append(c.recent, td)
	if len(c.recent) > c.opts.KeepRecent {
		c.recent = c.recent[1:]
	}
	if td.Err {
		c.errored = append(c.errored, td)
		if len(c.errored) > c.opts.KeepErrors {
			c.errored = c.errored[1:]
		}
	}
	// slowest stays ascending by duration; replace the current minimum
	// when full.
	if len(c.slowest) < c.opts.KeepSlowest {
		c.slowest = append(c.slowest, td)
		sort.Slice(c.slowest, func(i, j int) bool { return c.slowest[i].Duration < c.slowest[j].Duration })
	} else if len(c.slowest) > 0 && td.Duration > c.slowest[0].Duration {
		c.slowest[0] = td
		sort.Slice(c.slowest, func(i, j int) bool { return c.slowest[i].Duration < c.slowest[j].Duration })
	}
}

// buildTrace derives the trace summary from its spans.
func buildTrace(tid TraceID, spans []SpanData) *TraceData {
	td := &TraceData{TraceID: tid, Spans: spans}
	if len(spans) == 0 {
		return td
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	local := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if s.Error != "" {
			td.Err = true
		}
		local[s.SpanID] = true
	}
	start := spans[0].Start
	end := start
	for _, s := range spans {
		if e := s.Start.Add(s.Duration); e.After(end) {
			end = e
		}
	}
	td.Start = start
	td.Duration = end.Sub(start)
	// The root is the earliest span whose parent is not a local span
	// (either a true root or the continuation of a remote parent).
	for _, s := range spans {
		if s.ParentID.IsZero() || !local[s.ParentID] {
			td.Root = s.Name
			break
		}
	}
	if td.Root == "" {
		td.Root = spans[0].Name
	}
	return td
}

// Stats returns a snapshot of the collector's counters.
func (c *SpanCollector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ActiveTraces = len(c.active)
	return s
}

// Traces lists the retained traces — recent, slowest and errored,
// deduplicated — newest first.
func (c *SpanCollector) Traces() []*TraceData {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[*TraceData]bool)
	var out []*TraceData
	add := func(list []*TraceData) {
		for _, td := range list {
			if !seen[td] {
				seen[td] = true
				out = append(out, td)
			}
		}
	}
	add(c.recent)
	add(c.slowest)
	add(c.errored)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Trace returns the retained trace with the given ID. Multiple
// finalised segments of the same trace (a long-lived trace whose spans
// arrived in bursts) are merged into one tree. ok is false when the
// trace is not retained.
func (c *SpanCollector) Trace(tid TraceID) (*TraceData, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var spans []SpanData
	truncated := false
	seen := make(map[*TraceData]bool)
	collect := func(list []*TraceData) {
		for _, td := range list {
			if td.TraceID == tid && !seen[td] {
				seen[td] = true
				spans = append(spans, td.Spans...)
				truncated = truncated || td.Truncated
			}
		}
	}
	collect(c.recent)
	collect(c.slowest)
	collect(c.errored)
	// Include the still-active segment so an in-flight trace can be
	// inspected live.
	if t, ok := c.active[tid]; ok {
		spans = append(spans, t.spans...)
		truncated = truncated || t.truncated
	}
	if len(spans) == 0 {
		return nil, false
	}
	td := buildTrace(tid, spans)
	td.Truncated = truncated
	return td, true
}

// WriteTree renders the trace as an indented text tree with per-stage
// durations, children sorted by start time.
func (td *TraceData) WriteTree(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("trace %s  root=%s  spans=%d  duration=%s\n",
		td.TraceID, td.Root, len(td.Spans), td.Duration); err != nil {
		return err
	}
	local := make(map[SpanID]bool, len(td.Spans))
	children := make(map[SpanID][]SpanData)
	for _, s := range td.Spans {
		local[s.SpanID] = true
	}
	var roots []SpanData
	for _, s := range td.Spans {
		if s.ParentID.IsZero() || !local[s.ParentID] {
			roots = append(roots, s)
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	var walk func(s SpanData, depth int) error
	walk = func(s SpanData, depth int) error {
		line := fmt.Sprintf("%*s%s  %s", 2*depth, "", s.Name, s.Duration)
		for _, a := range s.Attrs {
			line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
		}
		if s.Error != "" {
			line += "  ERROR=" + s.Error
		}
		if err := p("%s\n", line); err != nil {
			return err
		}
		kids := children[s.SpanID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, k := range kids {
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, r := range roots {
		if err := walk(r, 1); err != nil {
			return err
		}
	}
	return nil
}
