// Package telemetry is the measurement substrate of the system: a
// lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// log-scale histograms), a bounded ring-buffer event tracer, and an HTTP
// admin endpoint exposing live snapshots plus pprof.
//
// The registry is designed for hot paths: metric handles are resolved
// once (a mutex-guarded map lookup at registration time) and then
// updated with single atomic operations. Snapshots read the same atomics
// without stopping writers, so a running broker or simulation can be
// inspected at any time.
//
// Metric names are dot-separated paths, e.g. "broker.publishes" or
// "transport.server.bytes_in". Histogram names conventionally end in a
// unit suffix ("_ns" for nanoseconds, "_bytes" for sizes).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotone;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use. Re-registering
// an existing name returns the existing metric, so independent
// components can share counters by name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	vecs       map[string]*vecSpec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		vecs:       make(map[string]*vecSpec),
	}
}

// Counter returns the counter with the given name, creating it if
// needed. Safe to call on a nil registry (returns a detached counter),
// so instrumented components can run without a registry wired up.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
// Safe on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds if needed. If the name exists, the
// existing histogram is returned and bounds are ignored. Safe on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. Writers are not
// stopped; the snapshot is per-metric atomic, not globally consistent.
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteSummary renders a sorted plain-text summary of the snapshot, used
// by the CLI tools and the report's telemetry section.
func (s Snapshot) WriteSummary(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := p("%-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := p("%-44s %d (gauge)\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		if err := p("%-44s n=%d mean=%.0f p50=%d p99=%d max<=%d\n",
			name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(1)); err != nil {
			return err
		}
	}
	return nil
}
