package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testProfileConfig(dir string) ProfileConfig {
	return ProfileConfig{
		Dir:         dir,
		CPUDuration: 10 * time.Millisecond,
		Interval:    5 * time.Millisecond,
		Cooldown:    time.Millisecond,
		MinEvents:   10,
	}
}

func TestProfileTriggerOnMissRate(t *testing.T) {
	var hits, misses atomic.Int64
	reg := NewRegistry()
	cfg := testProfileConfig(t.TempDir())
	cfg.Hits = hits.Load
	cfg.Misses = misses.Load
	trig, err := NewProfileTrigger(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	trig.evaluate() // primes the window baseline, must not capture
	if got := trig.List(); len(got) != 0 {
		t.Fatalf("captured on priming tick: %+v", got)
	}
	hits.Store(50)
	misses.Store(50) // 50% miss rate over the window
	trig.evaluate()
	profiles := trig.List()
	if len(profiles) < 1 {
		t.Fatal("no profile captured after induced SLO burn")
	}
	for _, p := range profiles {
		if !strings.HasPrefix(p.Reason, "slo-miss-rate-") {
			t.Errorf("reason = %q, want slo-miss-rate-*", p.Reason)
		}
		if p.Kind != "cpu" && p.Kind != "heap" {
			t.Errorf("kind = %q", p.Kind)
		}
		if p.Size <= 0 {
			t.Errorf("profile %s has size %d", p.Name, p.Size)
		}
	}
	if got := reg.Counter("telemetry.profiles.captured").Value(); got != int64(len(profiles)) {
		t.Errorf("captured counter = %d, want %d", got, len(profiles))
	}
}

func TestProfileTriggerIgnoresIdleWindow(t *testing.T) {
	var misses atomic.Int64
	cfg := testProfileConfig(t.TempDir())
	cfg.Hits = func() int64 { return 0 }
	cfg.Misses = misses.Load
	trig, err := NewProfileTrigger(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	trig.evaluate()
	misses.Store(5) // 100% miss rate but below MinEvents
	trig.evaluate()
	if got := trig.List(); len(got) != 0 {
		t.Errorf("captured on a sub-MinEvents window: %+v", got)
	}
}

func TestProfileTriggerOnFlaps(t *testing.T) {
	var flaps atomic.Int64
	cfg := testProfileConfig(t.TempDir())
	cfg.Flaps = flaps.Load
	cfg.FlapThreshold = 3
	trig, err := NewProfileTrigger(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	trig.evaluate()
	flaps.Store(4)
	trig.evaluate()
	profiles := trig.List()
	if len(profiles) == 0 {
		t.Fatal("no profile captured after readyz flapping")
	}
	if want := "readyz-flaps-4"; profiles[0].Reason != want {
		t.Errorf("reason = %q, want %q", profiles[0].Reason, want)
	}
}

func TestProfileRingBoundAndTraceID(t *testing.T) {
	cfg := testProfileConfig(t.TempDir())
	cfg.MaxProfiles = 4
	tid := TraceID{0xaa, 0xbb}
	cfg.TraceHint = func() string { return tid.String() }
	trig, err := NewProfileTrigger(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := trig.Capture("test-burn"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // distinct UnixNano prefixes
	}
	profiles := trig.List()
	if len(profiles) != 4 {
		t.Fatalf("ring holds %d profiles, want 4 (MaxProfiles)", len(profiles))
	}
	for _, p := range profiles {
		if p.TraceID != tid.String() {
			t.Errorf("profile %s trace ID = %q, want %q", p.Name, p.TraceID, tid)
		}
		if p.Reason != "test-burn" {
			t.Errorf("profile %s reason = %q", p.Name, p.Reason)
		}
	}
}

func TestProfileHandler(t *testing.T) {
	cfg := testProfileConfig(t.TempDir())
	trig, err := NewProfileTrigger(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trig.Capture("handler-test"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(trig.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Profiles []CapturedProfile `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Profiles) == 0 {
		t.Fatal("empty /profiles listing")
	}

	one, err := http.Get(srv.URL + "/profiles/" + listing.Profiles[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	one.Body.Close()
	if one.StatusCode != http.StatusOK {
		t.Errorf("GET profile = %d", one.StatusCode)
	}
	for _, bad := range []string{"/profiles/../etc/passwd", "/profiles/nope.txt"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s should be rejected", bad)
		}
	}
}

func TestParseProfileName(t *testing.T) {
	tid := strings.Repeat("ab", 16)
	p := parseProfileName("1700000000000000000-slo-miss-rate-40pct-"+tid+".cpu.pprof", 10, time.Now())
	if p.Kind != "cpu" || p.Reason != "slo-miss-rate-40pct" || p.TraceID != tid {
		t.Errorf("parsed = %+v", p)
	}
	p = parseProfileName("1700000000000000000-readyz-flaps-3.heap.pprof", 10, time.Now())
	if p.Kind != "heap" || p.Reason != "readyz-flaps-3" || p.TraceID != "" {
		t.Errorf("parsed = %+v", p)
	}
}

func TestTraceHintFromCollector(t *testing.T) {
	if got := TraceHintFromCollector(nil)(); got != "" {
		t.Errorf("nil collector hint = %q", got)
	}
	c := NewSpanCollector(CollectorOptions{})
	ctx := WithSpanCollector(context.Background(), c)
	_, sp := StartSpan(ctx, "slow")
	slow := sp.Context().TraceID
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if got := TraceHintFromCollector(c)(); got != slow.String() {
		t.Errorf("hint = %q, want slowest trace %q", got, slow)
	}
}
