package telemetry

import (
	"sync"
	"time"
)

// Event kinds recorded by the system's components. Kinds are plain
// strings so components can add their own, but the causality chain of a
// page through the broker uses these:
//
//	publish → match → notify → push → fetch
//
// together with the proxy-side "access" events, which is enough to
// reconstruct why a page was (or was not) resident when a user asked
// for it.
const (
	KindPublish = "publish"
	KindMatch   = "match"
	KindNotify  = "notify"
	KindPush    = "push"
	KindFetch   = "fetch"
	KindAccess  = "access"
)

// TraceEvent is one record in the tracer's ring buffer.
type TraceEvent struct {
	// Seq is a global monotone sequence number (causality order even
	// when wall clocks collide).
	Seq uint64 `json:"seq"`
	// At is the wall-clock time of the event.
	At time.Time `json:"at"`
	// Kind classifies the event (see the Kind constants).
	Kind string `json:"kind"`
	// Page is the page/content ID the event concerns ("" when not
	// page-scoped).
	Page string `json:"page,omitempty"`
	// Proxy is the proxy ID involved (-1 when not proxy-scoped).
	Proxy int `json:"proxy"`
	// Detail is free-form context (matched counts, outcomes, sizes).
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of TraceEvents. When full, new events
// overwrite the oldest. All methods are safe for concurrent use; a nil
// Tracer discards records, so components can be wired unconditionally.
type Tracer struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events ever recorded; buf index is next % len(buf)
}

// NewTracer returns a tracer keeping the last capacity events.
// capacity must be positive.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("telemetry: tracer capacity must be positive")
	}
	return &Tracer{buf: make([]TraceEvent, capacity)}
}

// Record appends an event. No-op on a nil tracer.
func (t *Tracer) Record(kind, page string, proxy int, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = TraceEvent{
		Seq: t.next, At: now, Kind: kind, Page: page, Proxy: proxy, Detail: detail,
	}
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Recorded returns the total number of events ever recorded (retained
// or overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dump returns the retained events in causality (Seq) order.
func (t *Tracer) Dump() []TraceEvent {
	return t.DumpPage("")
}

// DumpPage returns the retained events for one page ID in causality
// order; page "" matches every event.
func (t *Tracer) DumpPage(page string) []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	start := uint64(0)
	if t.next > n {
		start = t.next - n
	}
	out := make([]TraceEvent, 0, t.next-start)
	for seq := start; seq < t.next; seq++ {
		ev := t.buf[seq%n]
		if page != "" && ev.Page != page {
			continue
		}
		out = append(out, ev)
	}
	return out
}
