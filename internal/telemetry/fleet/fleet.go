// Package fleet aggregates the metrics of many admin endpoints into
// one cross-broker view. A Scraper polls each target's /metrics (JSON
// snapshot — brokers, proxies and sim nodes all serve the same shape),
// merges counters, gauges and histograms into a fleet snapshot with a
// per-node breakdown, derives fleet-wide SLO attainment and burn from
// the broker.slo.publish_to_placement.{hit,miss} counters, and serves
// the result on /fleet and /fleet/slo of whichever node was designated
// the aggregation point with -fleet-scrape.
//
// The aggregator is deliberately pull-based and stateless beyond a
// short burn-rate window: any node can be the scrape point, losing it
// loses no data, and the per-node JSON it consumes is the same
// endpoint a human or a Prometheus bridge reads.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pubsubcd/internal/telemetry"
)

// DefaultSLOBase is the counter pair the SLO report reads:
// <base>.hit and <base>.miss.
const DefaultSLOBase = "broker.slo.publish_to_placement"

// Options tune a Scraper; the zero value is usable.
type Options struct {
	// Interval between background scrape rounds (default 2s).
	Interval time.Duration
	// Timeout per target request (default 2s).
	Timeout time.Duration
	// SLOBase overrides the SLO counter pair (default DefaultSLOBase).
	SLOBase string
	// SLOTarget is the attainment objective in (0,1) used for the burn
	// rate (default 0.99: a 1% error budget).
	SLOTarget float64
	// Window is how many merged scrape samples the burn-rate window
	// retains (default 30 — one minute at the default interval).
	Window int
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.SLOBase == "" {
		o.SLOBase = DefaultSLOBase
	}
	if o.SLOTarget <= 0 || o.SLOTarget >= 1 {
		o.SLOTarget = 0.99
	}
	if o.Window <= 0 {
		o.Window = 30
	}
	return o
}

// Node is one scraped target's latest state.
type Node struct {
	Target      string             `json:"target"`
	Up          bool               `json:"up"`
	Error       string             `json:"error,omitempty"`
	LastScrape  time.Time          `json:"lastScrape"`
	ScrapeNanos int64              `json:"scrapeNanos"`
	Metrics     telemetry.Snapshot `json:"metrics"`
}

// Snapshot is the merged fleet view plus the per-node breakdown.
type Snapshot struct {
	At      time.Time          `json:"at"`
	Targets int                `json:"targets"`
	UpCount int                `json:"upCount"`
	Nodes   []Node             `json:"nodes"`
	Merged  telemetry.Snapshot `json:"merged"`
	// Skipped lists histogram names whose bucket layouts disagreed
	// across nodes and were therefore left out of Merged (they remain
	// in the per-node breakdown) — disagreements are reported, never
	// silently dropped.
	Skipped []string `json:"skippedHistograms,omitempty"`
}

// NodeSLO is one node's share of the SLO counters.
type NodeSLO struct {
	Target     string  `json:"target"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Attainment float64 `json:"attainment"`
}

// SLOReport is the fleet SLO view: lifetime attainment plus a windowed
// burn rate against the configured objective.
type SLOReport struct {
	CounterBase string    `json:"counterBase"`
	Target      float64   `json:"target"`
	At          time.Time `json:"at"`
	Hits        int64     `json:"hits"`
	Misses      int64     `json:"misses"`
	Attainment  float64   `json:"attainment"` // lifetime hit fraction; 1 when idle
	Window      struct {
		Seconds  float64 `json:"seconds"`
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		MissRate float64 `json:"missRate"`
		// BurnRate is MissRate divided by the error budget (1-Target):
		// 1.0 burns the budget exactly, >1 exhausts it early.
		BurnRate float64 `json:"burnRate"`
	} `json:"window"`
	PerNode []NodeSLO `json:"perNode"`
}

// sloSample is one merged scrape's SLO counter reading.
type sloSample struct {
	at           time.Time
	hits, misses int64
}

// Scraper polls a fixed target set and maintains the merged state.
type Scraper struct {
	targets []string
	opts    Options
	client  *http.Client

	mu      sync.Mutex
	nodes   map[string]*Node
	last    Snapshot
	window  []sloSample
	scraped bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

// New builds a scraper over the given admin addresses ("host:port" or
// full "http://host:port" URLs).
func New(targets []string, opts Options) (*Scraper, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("fleet: no scrape targets")
	}
	opts = opts.withDefaults()
	norm := make([]string, 0, len(targets))
	seen := make(map[string]bool)
	for _, t := range targets {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		t = strings.TrimRight(t, "/")
		if !seen[t] {
			seen[t] = true
			norm = append(norm, t)
		}
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("fleet: no scrape targets")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	return &Scraper{
		targets: norm,
		opts:    opts,
		client:  client,
		nodes:   make(map[string]*Node),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Targets returns the normalised target list.
func (s *Scraper) Targets() []string { return slices.Clone(s.targets) }

// Start launches the background scrape loop (one immediate round, then
// every Interval). Close stops it. Start is idempotent.
func (s *Scraper) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		ctx := context.Background()
		s.ScrapeOnce(ctx)
		ticker := time.NewTicker(s.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.ScrapeOnce(ctx)
			}
		}
	}()
}

// Close stops the background loop. It is safe to call on a scraper
// that was only ever used via ScrapeOnce (Start never called).
func (s *Scraper) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// ScrapeOnce polls every target concurrently, merges the results and
// returns the fresh fleet snapshot. Exported for deterministic tests
// and for serving a cold /fleet before the first background round.
func (s *Scraper) ScrapeOnce(ctx context.Context) Snapshot {
	type result struct {
		target string
		node   Node
	}
	results := make(chan result, len(s.targets))
	for _, target := range s.targets {
		go func(target string) {
			results <- result{target: target, node: s.scrapeTarget(ctx, target)}
		}(target)
	}
	nodes := make([]Node, 0, len(s.targets))
	byTarget := make(map[string]Node, len(s.targets))
	for range s.targets {
		r := <-results
		byTarget[r.target] = r.node
	}
	// Fixed target order keeps /fleet output stable across rounds.
	for _, target := range s.targets {
		nodes = append(nodes, byTarget[target])
	}
	snap := mergeNodes(nodes)
	s.mu.Lock()
	s.last = snap
	s.scraped = true
	hits, misses := snap.Merged.Counters[s.opts.SLOBase+".hit"], snap.Merged.Counters[s.opts.SLOBase+".miss"]
	s.window = append(s.window, sloSample{at: snap.At, hits: hits, misses: misses})
	if len(s.window) > s.opts.Window {
		s.window = s.window[len(s.window)-s.opts.Window:]
	}
	s.mu.Unlock()
	return snap
}

// scrapeTarget fetches one node's JSON metrics snapshot.
func (s *Scraper) scrapeTarget(ctx context.Context, target string) Node {
	node := Node{Target: target, LastScrape: time.Now()}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics?format=json", nil)
	if err != nil {
		node.Error = err.Error()
		return node
	}
	req.Header.Set("Accept", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		node.Error = err.Error()
		return node
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		node.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return node
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		node.Error = "decode: " + err.Error()
		return node
	}
	node.Up = true
	node.ScrapeNanos = time.Since(start).Nanoseconds()
	node.Metrics = snap
	return node
}

// mergeNodes folds the up nodes' snapshots into one: counters and
// gauges sum per name (labeled series keys merge like any other name,
// so per-strategy and per-topic breakdowns survive aggregation), and
// histograms with identical bucket layouts sum bucket-wise. Exemplars
// are per-node evidence and stay in the breakdown only.
func mergeNodes(nodes []Node) Snapshot {
	snap := Snapshot{
		At:      time.Now(),
		Targets: len(nodes),
		Nodes:   nodes,
		Merged: telemetry.Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]telemetry.HistogramSnapshot{},
		},
	}
	skipped := make(map[string]bool)
	for _, n := range nodes {
		if !n.Up {
			continue
		}
		snap.UpCount++
		for name, v := range n.Metrics.Counters {
			snap.Merged.Counters[name] += v
		}
		for name, v := range n.Metrics.Gauges {
			snap.Merged.Gauges[name] += v
		}
		for name, h := range n.Metrics.Histograms {
			if skipped[name] {
				continue
			}
			cur, ok := snap.Merged.Histograms[name]
			if !ok {
				snap.Merged.Histograms[name] = telemetry.HistogramSnapshot{
					Count:  h.Count,
					Sum:    h.Sum,
					Bounds: slices.Clone(h.Bounds),
					Counts: slices.Clone(h.Counts),
				}
				continue
			}
			if !slices.Equal(cur.Bounds, h.Bounds) || len(cur.Counts) != len(h.Counts) {
				skipped[name] = true
				delete(snap.Merged.Histograms, name)
				continue
			}
			cur.Count += h.Count
			cur.Sum += h.Sum
			for i := range h.Counts {
				cur.Counts[i] += h.Counts[i]
			}
			snap.Merged.Histograms[name] = cur
		}
	}
	for name := range skipped {
		snap.Skipped = append(snap.Skipped, name)
	}
	sort.Strings(snap.Skipped)
	return snap
}

// Snapshot returns the latest merged fleet view, scraping synchronously
// if no round has completed yet.
func (s *Scraper) Snapshot() Snapshot {
	s.mu.Lock()
	scraped, last := s.scraped, s.last
	s.mu.Unlock()
	if scraped {
		return last
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Timeout+time.Second)
	defer cancel()
	return s.ScrapeOnce(ctx)
}

// SLO derives the fleet SLO report from the latest snapshot and the
// burn window.
func (s *Scraper) SLO() SLOReport {
	snap := s.Snapshot()
	rep := SLOReport{
		CounterBase: s.opts.SLOBase,
		Target:      s.opts.SLOTarget,
		At:          snap.At,
	}
	hitName, missName := s.opts.SLOBase+".hit", s.opts.SLOBase+".miss"
	rep.Hits = snap.Merged.Counters[hitName]
	rep.Misses = snap.Merged.Counters[missName]
	if total := rep.Hits + rep.Misses; total > 0 {
		rep.Attainment = float64(rep.Hits) / float64(total)
	} else {
		rep.Attainment = 1
	}
	for _, n := range snap.Nodes {
		if !n.Up {
			continue
		}
		ns := NodeSLO{
			Target: n.Target,
			Hits:   n.Metrics.Counters[hitName],
			Misses: n.Metrics.Counters[missName],
		}
		if total := ns.Hits + ns.Misses; total > 0 {
			ns.Attainment = float64(ns.Hits) / float64(total)
		} else {
			ns.Attainment = 1
		}
		rep.PerNode = append(rep.PerNode, ns)
	}
	s.mu.Lock()
	if len(s.window) >= 2 {
		first, last := s.window[0], s.window[len(s.window)-1]
		rep.Window.Seconds = last.at.Sub(first.at).Seconds()
		rep.Window.Hits = last.hits - first.hits
		rep.Window.Misses = last.misses - first.misses
		if total := rep.Window.Hits + rep.Window.Misses; total > 0 {
			rep.Window.MissRate = float64(rep.Window.Misses) / float64(total)
		}
		rep.Window.BurnRate = rep.Window.MissRate / (1 - s.opts.SLOTarget)
	}
	s.mu.Unlock()
	return rep
}

// FleetHandler serves the merged fleet snapshot as JSON on /fleet.
func (s *Scraper) FleetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	})
}

// SLOHandler serves the fleet SLO report as JSON on /fleet/slo.
func (s *Scraper) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.SLO())
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
