package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"pubsubcd/internal/telemetry"
)

// metricsServer serves a registry's JSON snapshot the way a real admin
// endpoint does.
func metricsServer(t *testing.T, reg *telemetry.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestScrapeMergesCountersGaugesHistograms(t *testing.T) {
	regs := make([]*telemetry.Registry, 3)
	targets := make([]string, 3)
	bounds := []int64{10, 100}
	for i := range regs {
		regs[i] = telemetry.NewRegistry()
		regs[i].Counter("broker.publishes").Add(int64(10 * (i + 1)))
		regs[i].CounterVec("broker.publishes_by_topic", "topic").With("news").Add(int64(i + 1))
		regs[i].Gauge("broker.live_subscriptions").Set(int64(i))
		regs[i].Histogram("broker.publish_ns", bounds).Observe(int64(50 * i))
		targets[i] = metricsServer(t, regs[i]).URL
	}
	s, err := New(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.ScrapeOnce(context.Background())
	if snap.UpCount != 3 || snap.Targets != 3 {
		t.Fatalf("up/targets = %d/%d, want 3/3", snap.UpCount, snap.Targets)
	}
	if got := snap.Merged.Counters["broker.publishes"]; got != 60 {
		t.Errorf("merged publishes = %d, want 60", got)
	}
	if got := snap.Merged.Counters[`broker.publishes_by_topic{topic="news"}`]; got != 6 {
		t.Errorf("merged labeled series = %d, want 6", got)
	}
	if got := snap.Merged.Gauges["broker.live_subscriptions"]; got != 3 {
		t.Errorf("merged gauge = %d, want 3", got)
	}
	h, ok := snap.Merged.Histograms["broker.publish_ns"]
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if h.Count != 3 || h.Sum != 150 || !slices.Equal(h.Bounds, bounds) {
		t.Errorf("merged histogram = %+v", h)
	}
	// Per-node totals must sum to the merged value (the federated
	// invariant the e2e test checks over real brokers).
	var perNode int64
	for _, n := range snap.Nodes {
		perNode += n.Metrics.Counters["broker.publishes"]
	}
	if perNode != snap.Merged.Counters["broker.publishes"] {
		t.Errorf("per-node sum %d != merged %d", perNode, snap.Merged.Counters["broker.publishes"])
	}
}

func TestScrapeSkipsMismatchedHistograms(t *testing.T) {
	a, b := telemetry.NewRegistry(), telemetry.NewRegistry()
	a.Histogram("h", []int64{10, 100}).Observe(5)
	b.Histogram("h", []int64{16, 256}).Observe(5)
	s, err := New([]string{metricsServer(t, a).URL, metricsServer(t, b).URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.ScrapeOnce(context.Background())
	if _, ok := snap.Merged.Histograms["h"]; ok {
		t.Error("mismatched histogram should not merge")
	}
	if !slices.Contains(snap.Skipped, "h") {
		t.Errorf("Skipped = %v, want [h] — disagreements must be reported", snap.Skipped)
	}
	for _, n := range snap.Nodes {
		if _, ok := n.Metrics.Histograms["h"]; !ok {
			t.Error("per-node breakdown should retain the skipped histogram")
		}
	}
}

func TestScrapeDownNode(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c").Add(7)
	up := metricsServer(t, reg)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(down.Close)
	s, err := New([]string{up.URL, down.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.ScrapeOnce(context.Background())
	if snap.UpCount != 1 {
		t.Errorf("UpCount = %d, want 1", snap.UpCount)
	}
	if snap.Merged.Counters["c"] != 7 {
		t.Errorf("merged counter = %d, want 7 (down node excluded)", snap.Merged.Counters["c"])
	}
	var sawDown bool
	for _, n := range snap.Nodes {
		if !n.Up {
			sawDown = true
			if n.Error == "" {
				t.Error("down node should carry its error")
			}
		}
	}
	if !sawDown {
		t.Error("down node missing from breakdown")
	}
}

func TestSLOReportAndBurn(t *testing.T) {
	var hits, misses atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := telemetry.Snapshot{
			Counters: map[string]int64{
				DefaultSLOBase + ".hit":  hits.Load(),
				DefaultSLOBase + ".miss": misses.Load(),
			},
			Gauges:     map[string]int64{},
			Histograms: map[string]telemetry.HistogramSnapshot{},
		}
		_ = json.NewEncoder(w).Encode(snap)
	}))
	t.Cleanup(srv.Close)
	s, err := New([]string{srv.URL}, Options{SLOTarget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	hits.Store(90)
	misses.Store(10)
	s.ScrapeOnce(context.Background())
	hits.Store(140) // +50 hits, +50 misses in the window: 50% miss rate
	misses.Store(60)
	s.ScrapeOnce(context.Background())

	rep := s.SLO()
	if rep.Hits != 140 || rep.Misses != 60 {
		t.Errorf("lifetime hits/misses = %d/%d", rep.Hits, rep.Misses)
	}
	if rep.Attainment != 0.7 {
		t.Errorf("attainment = %g, want 0.7", rep.Attainment)
	}
	if rep.Window.Hits != 50 || rep.Window.Misses != 50 {
		t.Errorf("window deltas = %+v", rep.Window)
	}
	if rep.Window.MissRate != 0.5 {
		t.Errorf("window miss rate = %g, want 0.5", rep.Window.MissRate)
	}
	// Burn = missRate / errorBudget = 0.5 / 0.1 = 5x.
	if rep.Window.BurnRate < 4.99 || rep.Window.BurnRate > 5.01 {
		t.Errorf("burn rate = %g, want 5", rep.Window.BurnRate)
	}
	if len(rep.PerNode) != 1 || rep.PerNode[0].Attainment != 0.7 {
		t.Errorf("per-node = %+v", rep.PerNode)
	}
}

func TestFleetHandlers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(DefaultSLOBase + ".hit").Add(5)
	s, err := New([]string{metricsServer(t, reg).URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleetSrv := httptest.NewServer(s.FleetHandler())
	t.Cleanup(fleetSrv.Close)
	resp, err := http.Get(fleetSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.UpCount != 1 {
		t.Errorf("handler snapshot UpCount = %d", snap.UpCount)
	}

	sloSrv := httptest.NewServer(s.SLOHandler())
	t.Cleanup(sloSrv.Close)
	resp2, err := http.Get(sloSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rep SLOReport
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Hits != 5 || rep.Attainment != 1 {
		t.Errorf("slo report = %+v", rep)
	}
}

// TestScrapeNodeDiesMidSoak covers the soak-harness failure mode: a
// fleet member vanishes between scrapes. Later scrapes must keep
// merging the survivors, report the dead node (with its error) instead
// of silently shrinking the fleet, and keep counting it in Targets.
func TestScrapeNodeDiesMidSoak(t *testing.T) {
	regs := make([]*telemetry.Registry, 3)
	srvs := make([]*httptest.Server, 3)
	targets := make([]string, 3)
	for i := range regs {
		regs[i] = telemetry.NewRegistry()
		regs[i].Counter("broker.publishes").Add(10)
		srvs[i] = metricsServer(t, regs[i])
		targets[i] = srvs[i].URL
	}
	s, err := New(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.ScrapeOnce(context.Background())
	if snap.UpCount != 3 || snap.Merged.Counters["broker.publishes"] != 30 {
		t.Fatalf("pre-death scrape: up=%d merged=%d, want 3/30", snap.UpCount, snap.Merged.Counters["broker.publishes"])
	}

	// Node 1 dies mid-soak; the survivors keep publishing.
	srvs[1].Close()
	regs[0].Counter("broker.publishes").Add(5)
	regs[2].Counter("broker.publishes").Add(5)

	snap = s.ScrapeOnce(context.Background())
	if snap.Targets != 3 {
		t.Errorf("Targets = %d, want 3 (dead nodes still belong to the fleet)", snap.Targets)
	}
	if snap.UpCount != 2 {
		t.Errorf("UpCount = %d, want 2", snap.UpCount)
	}
	if got := snap.Merged.Counters["broker.publishes"]; got != 30 {
		t.Errorf("merged publishes = %d, want 30 (two survivors at 15 each)", got)
	}
	var deadReported bool
	for _, n := range snap.Nodes {
		if !n.Up {
			deadReported = true
			if n.Error == "" {
				t.Error("dead node should carry its scrape error")
			}
		}
	}
	if !deadReported {
		t.Error("dead node missing from per-node breakdown")
	}
}

// TestSLOBurnRateFiniteZeroWindow pins the burn-rate math when a
// scrape window saw no SLO events at all (an idle soak, or every
// survivor between two scrapes of a dead-quiet fleet): the miss rate
// and burn rate must both be exactly 0 — never NaN or Inf from the
// 0/0 — so the soak harness can always compare them against gates.
func TestSLOBurnRateFiniteZeroWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(DefaultSLOBase + ".hit").Add(90)
	reg.Counter(DefaultSLOBase + ".miss").Add(10)
	s, err := New([]string{metricsServer(t, reg).URL}, Options{SLOTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	s.ScrapeOnce(context.Background())
	s.ScrapeOnce(context.Background()) // identical totals: zero-event window

	rep := s.SLO()
	if rep.Window.Hits != 0 || rep.Window.Misses != 0 {
		t.Fatalf("window deltas = %+v, want 0/0", rep.Window)
	}
	for name, v := range map[string]float64{
		"miss rate": rep.Window.MissRate,
		"burn rate": rep.Window.BurnRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v, want 0 with zero events", name, v)
		}
	}
}

// TestCloseWithoutStart pins that a scraper used only via ScrapeOnce
// (no background loop — pubsubload's post-run scrape) closes without
// hanging on the never-started loop's done channel.
func TestCloseWithoutStart(t *testing.T) {
	s, err := New([]string{"127.0.0.1:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a scraper that was never started")
	}
}

func TestNewNormalizesTargets(t *testing.T) {
	s, err := New([]string{" 127.0.0.1:7071 ", "http://127.0.0.1:7071/", "127.0.0.1:7072"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:7071", "http://127.0.0.1:7072"}
	if got := s.Targets(); !slices.Equal(got, want) {
		t.Errorf("targets = %v, want %v", got, want)
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty target list should fail")
	}
}
