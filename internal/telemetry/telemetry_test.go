package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("re-registering a counter should return the same instance")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	if r.Gauge("g") != g {
		t.Error("re-registering a gauge should return the same instance")
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", CountBuckets()).Observe(3)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	if r.CounterNames() != nil {
		t.Error("nil registry should have no counter names")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h_ns", LatencyBuckets()).Observe(int64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_ns", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("c1").Add(3)
	r.Gauge("g1").Set(9)
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	snap := r.Snapshot()
	if snap.Counters["c1"] != 3 || snap.Gauges["g1"] != 9 {
		t.Errorf("snapshot values wrong: %+v", snap)
	}
	hs := snap.Histograms["lat_ns"]
	if hs.Count != 3 || hs.Sum != 5055 {
		t.Errorf("histogram snapshot count/sum = %d/%d", hs.Count, hs.Sum)
	}
	var sb strings.Builder
	if err := snap.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"c1", "g1", "lat_ns", "(gauge)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "c1" {
		t.Errorf("CounterNames = %v", names)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound bucket
// semantics: a sample exactly on a bound lands in that bound's bucket,
// one above lands in the next, and samples above the largest bound land
// in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	cases := []struct {
		sample int64
		bucket int
	}{
		{-5, 0}, // clamped to 0
		{0, 0},
		{9, 0},
		{10, 0}, // exactly on the first bound: inclusive
		{11, 1},
		{100, 1},
		{101, 2},
		{1000, 2},
		{1001, 3}, // overflow
		{1 << 40, 3},
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		h.Observe(tc.sample)
		s := h.Snapshot()
		for i, c := range s.Counts {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("sample %d: bucket %d count = %d, want %d", tc.sample, i, c, want)
			}
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	var empty HistogramSnapshot = h.Snapshot()
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket 0
	}
	for i := 0; i < 9; i++ {
		h.Observe(50) // bucket 1
	}
	h.Observe(5000) // overflow
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := s.Quantile(0.95); got != 100 {
		t.Errorf("p95 = %d, want 100", got)
	}
	if got := s.Quantile(1); got != 2000 {
		t.Errorf("p100 = %d, want 2000 (2x largest bound for overflow)", got)
	}
	mean := s.Mean()
	want := float64(90*5+9*50+5000) / 100
	if mean != want {
		t.Errorf("mean = %g, want %g", mean, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 4, 5)
	want := []int64{1000, 4000, 16000, 64000, 256000}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b[i], want[i])
		}
	}
	// Small starts with rounding collisions must stay strictly ascending.
	tiny := ExpBuckets(1, 1.1, 20)
	for i := 1; i < len(tiny); i++ {
		if tiny[i] <= tiny[i-1] {
			t.Fatalf("ExpBuckets not ascending at %d: %v", i, tiny)
		}
	}
	for _, layout := range [][]int64{LatencyBuckets(), SizeBuckets(), CountBuckets()} {
		if len(layout) != 13 {
			t.Errorf("standard layout has %d buckets, want 13", len(layout))
		}
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) should panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
