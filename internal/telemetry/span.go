package telemetry

// Span-based distributed tracing. A Span measures one stage of the
// pipeline (transport send, broker match, journal append, push
// placement, proxy admit, ...) and carries trace/span/parent IDs so the
// stages of one logical operation — a page moving from Publish through
// matching, fan-out and a later cache hit — form a tree, even when the
// stages run in different processes connected by the wire protocol.
//
// The API is context-based: StartSpan(ctx, name) returns a child of the
// span already in ctx (or of a remote parent installed from the wire via
// WithRemoteSpanContext), collected by the SpanCollector installed with
// WithSpanCollector. When no collector is reachable from ctx, StartSpan
// is a no-op that allocates nothing and returns a nil *Span whose
// methods are all safe to call — instrumentation can stay wired
// unconditionally on hot paths.
//
// Wire propagation uses SpanContext.String / ParseSpanContext: a
// 32-hex-digit trace ID and a 16-hex-digit span ID joined by '-'. The
// transport carries it in an optional JSON field old peers simply
// ignore.

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	mrand "math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one distributed trace (all spans of one logical
// operation, across processes).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText renders the ID as hex (JSON object keys and fields).
func (t TraceID) MarshalText() ([]byte, error) {
	dst := make([]byte, hex.EncodedLen(len(t)))
	hex.Encode(dst, t[:])
	return dst, nil
}

// UnmarshalText parses 32 hex digits.
func (t *TraceID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(t) {
		return fmt.Errorf("telemetry: trace ID must be %d hex digits, got %d", 2*len(t), len(b))
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// MarshalText renders the ID as hex.
func (s SpanID) MarshalText() ([]byte, error) {
	dst := make([]byte, hex.EncodedLen(len(s)))
	hex.Encode(dst, s[:])
	return dst, nil
}

// UnmarshalText parses 16 hex digits.
func (s *SpanID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(s) {
		return fmt.Errorf("telemetry: span ID must be %d hex digits, got %d", 2*len(s), len(b))
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// newTraceID returns a fresh random trace ID.
func newTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], mrand.Uint64())
	binary.BigEndian.PutUint64(t[8:], mrand.Uint64())
	return t
}

// newSpanID returns a fresh random span ID.
func newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], mrand.Uint64())
	return s
}

// SpanContext is the portable identity of a span: what crosses the wire
// so a peer can parent its spans under ours.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// String encodes the context for the wire: "<32 hex>-<16 hex>".
func (sc SpanContext) String() string {
	return sc.TraceID.String() + "-" + sc.SpanID.String()
}

// ParseSpanContext decodes a wire trace-context field. It is the single
// entry point for untrusted trace bytes: any string yields a context or
// an error, never a panic.
func ParseSpanContext(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) != 49 || s[32] != '-' {
		return sc, fmt.Errorf("telemetry: bad span context %q", s)
	}
	if err := sc.TraceID.UnmarshalText([]byte(s[:32])); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: bad trace ID in %q: %w", s, err)
	}
	if err := sc.SpanID.UnmarshalText([]byte(s[33:])); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: bad span ID in %q: %w", s, err)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("telemetry: zero span context %q", s)
	}
	return sc, nil
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Bool builds a boolean-valued attribute.
func Bool(key string, value bool) Attr {
	if value {
		return Attr{Key: key, Value: "true"}
	}
	return Attr{Key: key, Value: "false"}
}

// Span is one live stage measurement. A nil *Span is the disabled form:
// every method is a no-op, so callers never need to branch.
type Span struct {
	collector *SpanCollector
	sc        SpanContext
	parent    SpanID
	name      string
	start     time.Time

	mu    sync.Mutex
	attrs []Attr
	errs  string
	ended bool
}

// Context keys. Distinct types so values cannot collide.
type (
	spanCtxKey      struct{}
	collectorCtxKey struct{}
	remoteCtxKey    struct{}
)

// WithSpanCollector installs the collector spans started under ctx
// report to. Instrumented code below this point produces real spans.
func WithSpanCollector(ctx context.Context, c *SpanCollector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorCtxKey{}, c)
}

// SpanCollectorFromContext returns the collector installed in ctx, or
// nil.
func SpanCollectorFromContext(ctx context.Context) *SpanCollector {
	c, _ := ctx.Value(collectorCtxKey{}).(*SpanCollector)
	return c
}

// WithRemoteSpanContext records a parent span that lives in another
// process (parsed off the wire). The next StartSpan under ctx becomes
// its child, continuing the distributed trace locally.
func WithRemoteSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// SpanFromContext returns the active span in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanContextFromContext returns the portable identity of the active
// span (local or remote) in ctx; the zero value when tracing is off.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if s := SpanFromContext(ctx); s != nil {
		return s.sc
	}
	sc, _ := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc
}

// StartSpan starts a span named name as a child of the span in ctx (or
// of a remote parent installed with WithRemoteSpanContext; a fresh root
// otherwise) and returns a derived context carrying it. When no
// collector is reachable from ctx, it returns ctx unchanged and a nil
// span — no allocation, no work — so hot paths can call it
// unconditionally.
//
// The caller must call End on the returned span (nil-safe).
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parentSpan := SpanFromContext(ctx)
	var collector *SpanCollector
	var traceID TraceID
	var parentID SpanID
	if parentSpan != nil {
		collector = parentSpan.collector
		traceID = parentSpan.sc.TraceID
		parentID = parentSpan.sc.SpanID
	} else {
		collector = SpanCollectorFromContext(ctx)
		if collector == nil {
			return ctx, nil
		}
		if remote, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && remote.Valid() {
			traceID = remote.TraceID
			parentID = remote.SpanID
		} else {
			traceID = newTraceID()
		}
	}
	s := &Span{
		collector: collector,
		sc:        SpanContext{TraceID: traceID, SpanID: newSpanID()},
		parent:    parentID,
		name:      name,
		start:     time.Now(),
		attrs:     attrs,
	}
	collector.spanStarted(traceID)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Context returns the span's portable identity; the zero value on a nil
// span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value. No-op on nil
// (the value is not formatted in that case, so disabled spans cost
// nothing).
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetError marks the span failed. No-op on nil or nil err.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if s.errs == "" {
		s.errs = err.Error()
	}
	s.mu.Unlock()
}

// End completes the span and hands it to the collector. Idempotent and
// nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Error:    s.errs,
	}
	s.mu.Unlock()
	s.collector.spanEnded(data)
}
