package telemetry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSpanContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	if !sc.Valid() {
		t.Fatal("fresh span context not valid")
	}
	s := sc.String()
	if len(s) != 49 || s[32] != '-' {
		t.Fatalf("wire form %q has wrong shape", s)
	}
	got, err := ParseSpanContext(s)
	if err != nil {
		t.Fatalf("ParseSpanContext(%q): %v", s, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %v, want %v", got, sc)
	}
}

func TestParseSpanContextRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"abc",
		strings.Repeat("0", 49),                               // no separator
		strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16), // bad hex trace
		strings.Repeat("a", 32) + "-" + strings.Repeat("z", 16), // bad hex span
		strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16), // zero IDs
		strings.Repeat("a", 32) + "-" + strings.Repeat("a", 17), // too long
		strings.Repeat("a", 31) + "-" + strings.Repeat("a", 16), // too short
	}
	for _, s := range bad {
		if sc, err := ParseSpanContext(s); err == nil {
			t.Errorf("ParseSpanContext(%q) = %v, want error", s, sc)
		}
	}
}

func TestStartSpanDisabledIsNil(t *testing.T) {
	ctx := context.Background()
	got, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan without collector returned a live span")
	}
	if got != ctx {
		t.Fatal("StartSpan without collector derived a new context")
	}
	// Every method must be a no-op on the nil span.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 42)
	sp.SetError(errors.New("boom"))
	if sp.Name() != "" || sp.Context().Valid() {
		t.Error("nil span leaked identity")
	}
	sp.End()
	sp.End() // idempotent too
}

func TestStartSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "proxy.push")
		sp.SetAttr("page", "p1")
		sp.SetAttrInt("version", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %.1f times per op, want 0", allocs)
	}
}

func TestSpanTreeNestingAndRetention(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{})
	ctx := WithSpanCollector(context.Background(), c)

	ctx, root := StartSpan(ctx, "broker.publish")
	if root == nil {
		t.Fatal("StartSpan with collector returned nil")
	}
	root.SetAttr("page", "p1")
	cctx, child := StartSpan(ctx, "broker.match")
	child.SetAttrInt("matched", 2)
	_, grand := StartSpan(cctx, "broker.push")
	grand.End()
	child.End()
	tid := root.Context().TraceID
	root.End()

	td, ok := c.Trace(tid)
	if !ok {
		t.Fatalf("trace %s not retained", tid)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(td.Spans))
	}
	if td.Root != "broker.publish" {
		t.Errorf("root = %q, want broker.publish", td.Root)
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		if s.TraceID != tid {
			t.Errorf("span %s carries trace %s, want %s", s.Name, s.TraceID, tid)
		}
		byName[s.Name] = s
	}
	if byName["broker.match"].ParentID != byName["broker.publish"].SpanID {
		t.Error("broker.match is not a child of broker.publish")
	}
	if byName["broker.push"].ParentID != byName["broker.match"].SpanID {
		t.Error("broker.push is not a child of broker.match")
	}

	var sb strings.Builder
	if err := td.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	tree := sb.String()
	for _, want := range []string{"broker.publish", "  broker.match", "    broker.push", "page=p1", "matched=2"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}

	stats := c.Stats()
	if stats.SpansStarted != 3 || stats.SpansCompleted != 3 || stats.TracesCompleted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ActiveTraces != 0 {
		t.Errorf("trace still active after all spans ended: %+v", stats)
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	// Process A starts a trace; its span context crosses the wire as a
	// string; process B (a different collector) parents under it.
	a := NewSpanCollector(CollectorOptions{})
	actx, asp := StartSpan(WithSpanCollector(context.Background(), a), "transport.client.publish")
	wire := asp.Context().String()
	_ = actx

	b := NewSpanCollector(CollectorOptions{})
	remote, err := ParseSpanContext(wire)
	if err != nil {
		t.Fatal(err)
	}
	bctx := WithRemoteSpanContext(WithSpanCollector(context.Background(), b), remote)
	_, bsp := StartSpan(bctx, "transport.server.publish")
	if bsp.Context().TraceID != asp.Context().TraceID {
		t.Fatalf("remote child trace %s != parent trace %s",
			bsp.Context().TraceID, asp.Context().TraceID)
	}
	tid := bsp.Context().TraceID
	bsp.End()
	asp.End()

	td, ok := b.Trace(tid)
	if !ok {
		t.Fatal("remote-parented trace not retained on B")
	}
	if td.Spans[0].ParentID != asp.Context().SpanID {
		t.Errorf("server span parent = %s, want client span %s",
			td.Spans[0].ParentID, asp.Context().SpanID)
	}
	// Root resolution: the parent is not local to B, so the server span
	// is B's root.
	if td.Root != "transport.server.publish" {
		t.Errorf("root = %q", td.Root)
	}
}

func TestSpanContextPropagatesWithoutCollector(t *testing.T) {
	// Even with no local collector, a remote span context in ctx must be
	// readable so the transport can forward the trace field.
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	ctx := WithRemoteSpanContext(context.Background(), sc)
	if got := SpanContextFromContext(ctx); got != sc {
		t.Fatalf("SpanContextFromContext = %v, want %v", got, sc)
	}
	if _, sp := StartSpan(ctx, "x"); sp != nil {
		t.Fatal("StartSpan produced a span with no collector")
	}
}

func TestCollectorSpanBoundTruncates(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{MaxSpansPerTrace: 4})
	ctx := WithSpanCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("child-%d", i))
		sp.End()
	}
	tid := root.Context().TraceID
	root.End()
	td, ok := c.Trace(tid)
	if !ok {
		t.Fatal("bounded trace not retained")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(td.Spans))
	}
	if !td.Truncated {
		t.Error("trace not marked truncated")
	}
	if c.Stats().SpansDropped == 0 {
		t.Error("no spans counted dropped")
	}
}

func TestCollectorActiveTraceBoundEvicts(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{MaxActiveTraces: 2})
	ctx := WithSpanCollector(context.Background(), c)
	var spans []*Span
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("op-%d", i)) // 5 distinct traces
		spans = append(spans, sp)
	}
	stats := c.Stats()
	if stats.ActiveTraces > 2 {
		t.Fatalf("active traces %d exceeds bound 2", stats.ActiveTraces)
	}
	if stats.TracesEvicted != 3 {
		t.Errorf("evicted %d traces, want 3", stats.TracesEvicted)
	}
	for _, sp := range spans {
		sp.End() // ends for evicted traces must not panic or resurrect
	}
	if got := c.Stats().ActiveTraces; got != 0 {
		t.Errorf("active traces after all ends = %d", got)
	}
}

func TestCollectorRecentRingAndErrored(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{KeepRecent: 3, KeepSlowest: 2, KeepErrors: 2})
	ctx := WithSpanCollector(context.Background(), c)
	for i := 0; i < 6; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("op-%d", i))
		if i == 5 {
			sp.SetError(errors.New("synthetic failure"))
		}
		sp.End()
	}
	traces := c.Traces()
	// recent(3) + slowest(2) + errored(1), deduplicated — never more than
	// the sum of the bounds.
	if len(traces) == 0 || len(traces) > 6 {
		t.Fatalf("retained %d traces", len(traces))
	}
	var sawErr bool
	for _, td := range traces {
		if td.Err {
			sawErr = true
			if td.Root != "op-5" {
				t.Errorf("errored trace root = %q, want op-5", td.Root)
			}
		}
	}
	if !sawErr {
		t.Error("errored trace not retained")
	}
	if _, ok := c.Trace(TraceID{1}); ok {
		t.Error("lookup of unknown trace succeeded")
	}
}

func TestCollectorSlowestRetention(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{KeepRecent: 1, KeepSlowest: 2})
	// Hand the collector synthetic spans with controlled durations so
	// the slowest ring is deterministic.
	base := time.Now()
	for i, d := range []time.Duration{5, 50, 10, 40, 30} {
		tid := TraceID{byte(i + 1)}
		c.spanStarted(tid)
		c.spanEnded(SpanData{
			TraceID: tid, SpanID: SpanID{1}, Name: fmt.Sprintf("op-%d", i),
			Start: base, Duration: d * time.Millisecond,
		})
	}
	var durations []time.Duration
	for _, td := range c.Traces() {
		durations = append(durations, td.Duration)
	}
	want := map[time.Duration]bool{50 * time.Millisecond: false, 40 * time.Millisecond: false}
	for _, d := range durations {
		if _, ok := want[d]; ok {
			want[d] = true
		}
	}
	for d, seen := range want {
		if !seen {
			t.Errorf("slowest retention lost the %v trace; retained %v", d, durations)
		}
	}
}

func TestNilCollectorIsUsable(t *testing.T) {
	var c *SpanCollector
	c.spanStarted(TraceID{1})
	c.spanEnded(SpanData{})
	if got := c.Stats(); got != (CollectorStats{}) {
		t.Errorf("nil collector stats = %+v", got)
	}
	if c.Traces() != nil {
		t.Error("nil collector returned traces")
	}
	if _, ok := c.Trace(TraceID{1}); ok {
		t.Error("nil collector found a trace")
	}
	// WithSpanCollector(nil) must keep tracing disabled.
	ctx := WithSpanCollector(context.Background(), nil)
	if _, sp := StartSpan(ctx, "x"); sp != nil {
		t.Fatal("nil collector produced a live span")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	c := NewSpanCollector(CollectorOptions{})
	_, sp := StartSpan(WithSpanCollector(context.Background(), c), "once")
	sp.End()
	sp.End()
	sp.End()
	stats := c.Stats()
	if stats.SpansCompleted != 1 {
		t.Fatalf("completed %d spans, want 1", stats.SpansCompleted)
	}
	if stats.TracesCompleted != 1 {
		t.Fatalf("completed %d traces, want 1", stats.TracesCompleted)
	}
}
