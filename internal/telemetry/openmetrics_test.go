package telemetry

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fixedSnapshot builds a deterministic snapshot covering every
// exposition feature: labeled and unlabeled counters, gauges, a
// histogram with an exemplar, and a name needing sanitisation.
func fixedSnapshot() Snapshot {
	tid := TraceID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	return Snapshot{
		Counters: map[string]int64{
			"broker.publishes":                          42,
			`broker.publishes_by_topic{topic="news"}`:   30,
			`broker.publishes_by_topic{topic="sports"}`: 12,
			`sim.strategy.hits{strategy="GD*"}`:         7,
		},
		Gauges: map[string]int64{
			"broker.live_subscriptions": 5,
			"go.goroutines":             11,
		},
		Histograms: map[string]HistogramSnapshot{
			"broker.publish_ns": {
				Count:  6,
				Sum:    1000,
				Bounds: []int64{10, 100, 1000},
				Counts: []int64{1, 2, 2, 1},
				Exemplars: []Exemplar{{
					Bucket:  1,
					Value:   50,
					TraceID: tid,
					Time:    time.Unix(1700000000, 123000000).UTC(),
				}},
			},
		},
	}
}

// TestExpositionGolden locks the byte-exact text of both flavors.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry -run Golden.
func TestExpositionGolden(t *testing.T) {
	snap := fixedSnapshot()
	for _, tc := range []struct {
		golden string
		write  func(*strings.Builder) error
	}{
		{"metrics.prom.golden", func(b *strings.Builder) error { return snap.WritePrometheus(b) }},
		{"metrics.om.golden", func(b *strings.Builder) error { return snap.WriteOpenMetrics(b) }},
	} {
		var b strings.Builder
		if err := tc.write(&b); err != nil {
			t.Fatalf("%s: write: %v", tc.golden, err)
		}
		path := filepath.Join("testdata", tc.golden)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with UPDATE_GOLDEN=1 to generate)", tc.golden, err)
		}
		if got := b.String(); got != string(want) {
			t.Errorf("%s: exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", tc.golden, got, want)
		}
	}
}

// promFamily is one parsed metric family from the mini parser below.
type promFamily struct {
	kind    string // counter, gauge, histogram
	samples []promSample
}

type promSample struct {
	name     string // full sample name including _bucket/_sum/_count/_total
	labels   map[string]string
	value    float64
	exemplar string // trace_id of the sample's exemplar, "" when none
}

// parseExposition is a strict miniature parser for the Prometheus text
// format (and its OpenMetrics superset): every line must be a # TYPE
// comment, a sample whose name resolves to a declared family, # EOF, or
// blank. It stands in for a real Prometheus parser, which this module
// deliberately does not depend on.
func parseExposition(t *testing.T, text string, openMetrics bool) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	sawEOF := false
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if sawEOF {
			t.Fatalf("line %d: content after # EOF: %q", ln+1, line)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("line %d: unrecognised comment %q", ln+1, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, kind)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			fams[name] = &promFamily{kind: kind}
			continue
		}
		s := parseSampleLine(t, ln+1, line)
		fam := familyFor(fams, s.name)
		if fam == nil {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, s.name)
		}
		fam.samples = append(fam.samples, s)
	}
	if openMetrics && !sawEOF {
		t.Fatal("OpenMetrics output missing # EOF terminator")
	}
	if !openMetrics && sawEOF {
		t.Fatal("Prometheus output must not carry # EOF")
	}
	return fams
}

// familyFor resolves a sample name to its declared family, trying the
// histogram/counter suffixes.
func familyFor(fams map[string]*promFamily, name string) *promFamily {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := fams[base]; f != nil {
				return f
			}
		}
	}
	return nil
}

func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	// Exemplar suffix: " # {trace_id=\"...\"} <value> <ts>".
	if i := strings.Index(rest, " # "); i >= 0 {
		ex := rest[i+3:]
		rest = rest[:i]
		if !strings.HasPrefix(ex, `{trace_id="`) {
			t.Fatalf("line %d: malformed exemplar %q", ln, ex)
		}
		ex = strings.TrimPrefix(ex, `{trace_id="`)
		j := strings.IndexByte(ex, '"')
		if j < 0 {
			t.Fatalf("line %d: unterminated exemplar label", ln)
		}
		s.exemplar = ex[:j]
		// After the closing quote comes `} <value> [<timestamp>]`.
		fields := strings.Fields(ex[j+1:])
		if len(fields) < 2 || len(fields) > 3 || fields[0] != "}" {
			t.Fatalf("line %d: exemplar needs `} value [timestamp]`, got %q", ln, ex)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d: bad exemplar value %q", ln, fields[1])
		}
	}
	// Name and optional label body.
	var valuePart string
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced braces in %q", ln, rest)
		}
		s.name = rest[:i]
		_, labels := ParseSeries(rest[:j+1])
		if labels == nil {
			t.Fatalf("line %d: bad label body in %q", ln, rest)
		}
		s.labels = labels
		valuePart = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			t.Fatalf("line %d: sample needs name and value: %q", ln, rest)
		}
		s.name = fields[0]
		valuePart = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(valuePart)
	if len(fields) < 1 {
		t.Fatalf("line %d: missing value in %q", ln, line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, fields[0], err)
	}
	s.value = v
	for i := 0; i < len(s.name); i++ {
		c := s.name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
			t.Fatalf("line %d: name %q outside exposition alphabet", ln, s.name)
		}
	}
	return s
}

// TestExpositionParses runs both flavors of a live registry's snapshot
// through the mini parser and cross-checks the structure.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("broker.publishes").Add(42)
	r.CounterVec("broker.publishes_by_topic", "topic").With("news").Add(30)
	r.CounterVec("broker.publishes_by_topic", "topic").With("sports").Add(12)
	r.Gauge("broker.live_subscriptions").Set(5)
	h := r.Histogram("broker.publish_ns", []int64{10, 100, 1000})
	tid := TraceID{1}
	h.Observe(5)
	h.ObserveExemplar(50, tid)
	h.Observe(5000)
	snap := r.Snapshot()

	for _, flavor := range []string{"prometheus", "openmetrics"} {
		t.Run(flavor, func(t *testing.T) {
			var b strings.Builder
			var err error
			om := flavor == "openmetrics"
			if om {
				err = snap.WriteOpenMetrics(&b)
			} else {
				err = snap.WritePrometheus(&b)
			}
			if err != nil {
				t.Fatal(err)
			}
			fams := parseExposition(t, b.String(), om)

			pubName := "broker_publishes"
			if om {
				pubName += "_total"
			}
			fam := fams["broker_publishes"]
			if fam == nil || fam.kind != "counter" {
				t.Fatalf("broker_publishes family = %+v, want counter", fam)
			}
			if len(fam.samples) != 1 || fam.samples[0].name != pubName || fam.samples[0].value != 42 {
				t.Errorf("broker_publishes samples = %+v", fam.samples)
			}

			topics := fams["broker_publishes_by_topic"]
			if topics == nil || len(topics.samples) != 2 {
				t.Fatalf("topic family = %+v, want 2 series", topics)
			}
			var sum float64
			for _, s := range topics.samples {
				if s.labels["topic"] == "" {
					t.Errorf("topic sample missing label: %+v", s)
				}
				sum += s.value
			}
			if sum != 42 {
				t.Errorf("topic series sum = %g, want 42", sum)
			}

			hist := fams["broker_publish_ns"]
			if hist == nil || hist.kind != "histogram" {
				t.Fatalf("histogram family = %+v", hist)
			}
			var buckets []promSample
			var count, total float64
			sawExemplar := false
			for _, s := range hist.samples {
				switch s.name {
				case "broker_publish_ns_bucket":
					buckets = append(buckets, s)
					if s.exemplar != "" {
						sawExemplar = true
						if s.exemplar != tid.String() {
							t.Errorf("exemplar trace ID = %q, want %q", s.exemplar, tid)
						}
					}
				case "broker_publish_ns_count":
					count = s.value
				case "broker_publish_ns_sum":
					total = s.value
				}
			}
			if count != 3 || total != 5055 {
				t.Errorf("count/sum = %g/%g, want 3/5055", count, total)
			}
			sort.Slice(buckets, func(i, j int) bool {
				return leValue(buckets[i].labels["le"]) < leValue(buckets[j].labels["le"])
			})
			if len(buckets) != 4 {
				t.Fatalf("bucket count = %d, want 4 (3 bounds + +Inf)", len(buckets))
			}
			for i := 1; i < len(buckets); i++ {
				if buckets[i].value < buckets[i-1].value {
					t.Errorf("buckets not cumulative: %+v", buckets)
				}
			}
			if inf := buckets[len(buckets)-1]; inf.labels["le"] != "+Inf" || inf.value != count {
				t.Errorf("+Inf bucket = %+v, want le=+Inf value=%g", inf, count)
			}
			if om != sawExemplar {
				t.Errorf("exemplar present = %v, want %v (flavor %s)", sawExemplar, om, flavor)
			}
		})
	}
}

func leValue(le string) float64 {
	if le == "+Inf" {
		return 1e300
	}
	v, _ := strconv.ParseFloat(le, 64)
	return v
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"broker.publish_ns": "broker_publish_ns",
		"proxy-3.errors":    "proxy_3_errors",
		"9lives":            "_9lives",
		"ok_name:sub":       "ok_name:sub",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramExemplarRoundTrip(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	tid := TraceID{0xab, 0xcd}
	h.ObserveExemplar(50, tid)
	h.ObserveExemplar(5, TraceID{}) // zero trace ID records no exemplar
	snap := h.Snapshot()
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly 1", snap.Exemplars)
	}
	e := snap.Exemplars[0]
	if e.Bucket != 1 || e.Value != 50 || e.TraceID != tid {
		t.Errorf("exemplar = %+v", e)
	}
}

func TestAddRuntime(t *testing.T) {
	snap := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Histograms: map[string]HistogramSnapshot{}}
	snap.AddRuntime()
	if snap.Gauges["go.goroutines"] <= 0 {
		t.Errorf("go.goroutines = %d, want > 0", snap.Gauges["go.goroutines"])
	}
	if snap.Gauges["go.heap_alloc_bytes"] <= 0 {
		t.Errorf("go.heap_alloc_bytes = %d, want > 0", snap.Gauges["go.heap_alloc_bytes"])
	}
}
