package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getMetrics fetches /metrics with the given Accept header and query
// string, returning the body and content type.
func getMetrics(t *testing.T, addr, accept, query string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/metrics"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("neg.count").Add(9)
	srv, err := NewAdminServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	// Default: JSON, so existing scrapers (the fleet aggregator
	// included) see the historical shape.
	body, ct := getMetrics(t, addr, "", "")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("default content type = %q, want JSON", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("default body is not a JSON snapshot: %v", err)
	}
	if snap.Counters["neg.count"] != 9 {
		t.Errorf("JSON counters = %v", snap.Counters)
	}

	// Accept: openmetrics wins over text/plain, mirroring Prometheus'
	// own preference order.
	body, ct = getMetrics(t, addr, "application/openmetrics-text; version=1.0.0, text/plain;q=0.5", "")
	if ct != ContentTypeOpenMetrics {
		t.Errorf("openmetrics content type = %q", ct)
	}
	if !strings.Contains(body, "neg_count_total 9") || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("openmetrics body:\n%s", body)
	}

	// Accept: text/plain serves the classic Prometheus format.
	body, ct = getMetrics(t, addr, "text/plain", "")
	if ct != ContentTypePrometheus {
		t.Errorf("prometheus content type = %q", ct)
	}
	if !strings.Contains(body, "neg_count 9") || strings.Contains(body, "# EOF") {
		t.Errorf("prometheus body:\n%s", body)
	}

	// ?format= overrides the Accept header.
	body, _ = getMetrics(t, addr, "application/openmetrics-text", "?format=json")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("?format=json did not override Accept: %v", err)
	}
	body, ct = getMetrics(t, addr, "", "?format=openmetrics")
	if ct != ContentTypeOpenMetrics || !strings.Contains(body, "# EOF") {
		t.Errorf("?format=openmetrics: ct=%q body:\n%s", ct, body)
	}

	// Legacy ?text=1 summary still works.
	body, ct = getMetrics(t, addr, "", "?text=1")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(body, "neg.count") {
		t.Errorf("?text=1: ct=%q body:\n%s", ct, body)
	}

	// Both text flavors carry runtime vitals.
	body, _ = getMetrics(t, addr, "text/plain", "")
	if !strings.Contains(body, "go_goroutines") {
		t.Error("prometheus body missing go_goroutines")
	}
}

func TestAdminHandleAfterStart(t *testing.T) {
	srv, err := NewAdminServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "mounted")
	}))
	resp, err := http.Get("http://" + srv.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "mounted" {
		t.Errorf("late-mounted handler body = %q", body)
	}
}

func TestReadyTransitions(t *testing.T) {
	srv, err := NewAdminServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	healthy := true
	srv.RegisterHealthCheck("flip", func() error {
		if healthy {
			return nil
		}
		return io.ErrUnexpectedEOF
	})
	hit := func() {
		resp, err := http.Get("http://" + srv.Addr() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	hit() // ready: baseline, no flap
	if got := srv.ReadyTransitions(); got != 0 {
		t.Fatalf("flaps after first probe = %d, want 0", got)
	}
	healthy = false
	hit() // ready -> not ready
	healthy = true
	hit() // not ready -> ready
	hit() // steady: no flap
	if got := srv.ReadyTransitions(); got != 2 {
		t.Errorf("flaps = %d, want 2", got)
	}
}
