package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestTracerRecordAndDump(t *testing.T) {
	tr := NewTracer(8)
	if tr.Cap() != 8 || tr.Len() != 0 {
		t.Fatalf("fresh tracer cap/len = %d/%d", tr.Cap(), tr.Len())
	}
	tr.Record(KindPublish, "p1", -1, "v0")
	tr.Record(KindMatch, "p1", -1, "matched=2")
	tr.Record(KindPush, "p1", 3, "stored")
	events := tr.Dump()
	if len(events) != 3 {
		t.Fatalf("dump returned %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].Kind != KindPublish || events[2].Proxy != 3 {
		t.Errorf("unexpected events: %+v", events)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(KindAccess, fmt.Sprintf("p%d", i), i, "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", tr.Recorded())
	}
	events := tr.Dump()
	if len(events) != 4 {
		t.Fatalf("dump returned %d events", len(events))
	}
	// The retained window is the newest 4, in order.
	for i, ev := range events {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerDumpPageFilter(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(KindPublish, "a", -1, "")
	tr.Record(KindPublish, "b", -1, "")
	tr.Record(KindAccess, "a", 0, "hit")
	got := tr.DumpPage("a")
	if len(got) != 2 {
		t.Fatalf("page filter returned %d events, want 2", len(got))
	}
	if got[0].Kind != KindPublish || got[1].Detail != "hit" {
		t.Errorf("unexpected filtered events: %+v", got)
	}
}

func TestNilTracerIsUsable(t *testing.T) {
	var tr *Tracer
	tr.Record(KindPublish, "x", -1, "")
	if tr.Len() != 0 || tr.Cap() != 0 || tr.Recorded() != 0 {
		t.Error("nil tracer should report zero sizes")
	}
	if tr.Dump() != nil {
		t.Error("nil tracer dump should be nil")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Record(KindAccess, "p", n, "")
				_ = tr.Dump()
			}
		}(i)
	}
	wg.Wait()
	if tr.Recorded() != 4000 {
		t.Errorf("recorded = %d, want 4000", tr.Recorded())
	}
}
