package telemetry

// SLO-triggered continuous profiling. A ProfileTrigger watches two
// burn signals — the publish→placement SLO miss rate (from the hit and
// miss counters) and /readyz flapping — and, when either crosses its
// threshold, captures a bounded ring of pprof profiles (heap
// immediately, CPU for a short window) whose filenames carry the
// trigger reason and a correlated trace ID, so "the fleet burned its
// SLO at 12:04" resolves to both a profile and a span tree without
// anyone having been at a terminal when it happened.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// cpuProfileMu serialises CPU profiling process-wide: the runtime
// supports only one CPU profile at a time (the pprof HTTP handler
// competes for it too, in which case capture degrades to heap-only).
var cpuProfileMu sync.Mutex

// ProfileConfig configures a ProfileTrigger. Dir is required; every
// other field has a usable default.
type ProfileConfig struct {
	// Dir receives the captured .pprof files; created if missing.
	Dir string
	// MaxProfiles bounds the ring: oldest captures are deleted once
	// more than this many files exist (default 16 files).
	MaxProfiles int
	// CPUDuration is how long each CPU capture runs (default 2s).
	CPUDuration time.Duration
	// Interval is the signal evaluation period (default 10s).
	Interval time.Duration
	// Cooldown is the minimum gap between captures (default 2m).
	Cooldown time.Duration

	// MissRate triggers a capture when misses/(hits+misses) over the
	// last interval reaches this fraction (default 0.2; <0 disables).
	MissRate float64
	// MinEvents is the minimum hit+miss delta per interval for the
	// miss-rate signal to count (default 10) — a single slow publish in
	// an idle window is noise, not a burn.
	MinEvents int64
	// FlapThreshold triggers a capture when /readyz flips state at
	// least this many times within one interval (default 3; 0 disables
	// when no Flaps source is set).
	FlapThreshold int64

	// Hits and Misses source the SLO counters (typically
	// reg.Counter("broker.slo.publish_to_placement.hit").Value).
	Hits, Misses func() int64
	// Flaps sources the readiness transition count (typically
	// AdminServer.ReadyTransitions). Nil disables the flap signal.
	Flaps func() int64
	// TraceHint returns a trace ID to correlate into capture filenames;
	// nil or empty means uncorrelated. See TraceHintFromCollector.
	TraceHint func() string
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.MaxProfiles <= 0 {
		c.MaxProfiles = 16
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 2 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Minute
	}
	if c.MissRate == 0 {
		c.MissRate = 0.2
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 10
	}
	if c.FlapThreshold <= 0 {
		c.FlapThreshold = 3
	}
	return c
}

// TraceHintFromCollector returns a TraceHint that picks the most
// interesting retained trace: the slowest errored one, else the
// slowest overall — the span tree a human would open first when
// diagnosing the burn that triggered the capture.
func TraceHintFromCollector(c *SpanCollector) func() string {
	return func() string {
		if c == nil {
			return ""
		}
		var best *TraceData
		for _, td := range c.Traces() {
			if best == nil ||
				(td.Err && !best.Err) ||
				(td.Err == best.Err && td.Duration > best.Duration) {
				best = td
			}
		}
		if best == nil {
			return ""
		}
		return best.TraceID.String()
	}
}

// CapturedProfile describes one retained .pprof file.
type CapturedProfile struct {
	Name    string    `json:"name"` // filename under Dir, servable at /profiles/{name}
	Kind    string    `json:"kind"` // "cpu" or "heap"
	Reason  string    `json:"reason"`
	TraceID string    `json:"traceId,omitempty"`
	Size    int64     `json:"sizeBytes"`
	Time    time.Time `json:"time"`
}

// ProfileTrigger owns the capture ring. Create with NewProfileTrigger,
// start the watch loop with Start, serve the ring with Handler.
type ProfileTrigger struct {
	cfg ProfileConfig

	mu          sync.Mutex
	lastCapture time.Time
	lastHits    int64
	lastMisses  int64
	lastFlaps   int64
	primed      bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	captures *Counter // telemetry.profiles.captured when wired
}

// NewProfileTrigger validates the config and prepares the capture
// directory. reg may be nil; when set, captures tick
// telemetry.profiles.captured.
func NewProfileTrigger(cfg ProfileConfig, reg *Registry) (*ProfileTrigger, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: profile capture needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile dir: %w", err)
	}
	return &ProfileTrigger{
		cfg:      cfg.withDefaults(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		captures: reg.Counter("telemetry.profiles.captured"),
	}, nil
}

// Start launches the background watch loop. Close stops it.
func (t *ProfileTrigger) Start() {
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				t.evaluate()
			}
		}
	}()
}

// Close stops the watch loop (captures already in flight finish).
func (t *ProfileTrigger) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// evaluate runs one signal check: windowed SLO miss rate and readiness
// flap count since the previous tick.
func (t *ProfileTrigger) evaluate() {
	var hits, misses, flaps int64
	if t.cfg.Hits != nil {
		hits = t.cfg.Hits()
	}
	if t.cfg.Misses != nil {
		misses = t.cfg.Misses()
	}
	if t.cfg.Flaps != nil {
		flaps = t.cfg.Flaps()
	}
	t.mu.Lock()
	dh, dm, df := hits-t.lastHits, misses-t.lastMisses, flaps-t.lastFlaps
	primed := t.primed
	t.lastHits, t.lastMisses, t.lastFlaps = hits, misses, flaps
	t.primed = true
	cooling := time.Since(t.lastCapture) < t.cfg.Cooldown
	t.mu.Unlock()
	if !primed || cooling {
		// The first tick only establishes the window baseline.
		return
	}
	var reason string
	if t.cfg.Misses != nil && t.cfg.MissRate >= 0 && dh+dm >= t.cfg.MinEvents {
		if rate := float64(dm) / float64(dh+dm); rate >= t.cfg.MissRate {
			reason = fmt.Sprintf("slo-miss-rate-%.0fpct", rate*100)
		}
	}
	if reason == "" && t.cfg.Flaps != nil && df >= t.cfg.FlapThreshold {
		reason = fmt.Sprintf("readyz-flaps-%d", df)
	}
	if reason == "" {
		return
	}
	_, _ = t.Capture(reason)
}

// Capture takes one heap profile and one CPU profile (bounded by
// CPUDuration), names them after the reason and the current trace
// hint, prunes the ring and returns the new entries. Exported so an
// operator (or a test) can force a capture.
func (t *ProfileTrigger) Capture(reason string) ([]CapturedProfile, error) {
	t.mu.Lock()
	t.lastCapture = time.Now()
	t.mu.Unlock()
	tid := ""
	if t.cfg.TraceHint != nil {
		tid = t.cfg.TraceHint()
	}
	base := fmt.Sprintf("%d-%s", time.Now().UnixNano(), sanitizeFileComponent(reason))
	if tid != "" {
		base += "-" + tid
	}
	var out []CapturedProfile
	var firstErr error
	record := func(kind, name string, err error) {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		fi, serr := os.Stat(filepath.Join(t.cfg.Dir, name))
		var size int64
		if serr == nil {
			size = fi.Size()
		}
		out = append(out, CapturedProfile{
			Name: name, Kind: kind, Reason: reason, TraceID: tid,
			Size: size, Time: time.Now(),
		})
		t.captures.Inc()
	}
	heapName := base + ".heap.pprof"
	record("heap", heapName, t.writeHeapProfile(heapName))
	cpuName := base + ".cpu.pprof"
	record("cpu", cpuName, t.writeCPUProfile(cpuName))
	t.prune()
	if len(out) == 0 {
		return nil, firstErr
	}
	return out, nil
}

func (t *ProfileTrigger) writeHeapProfile(name string) error {
	f, err := os.Create(filepath.Join(t.cfg.Dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.WriteHeapProfile(f)
}

func (t *ProfileTrigger) writeCPUProfile(name string) error {
	cpuProfileMu.Lock()
	defer cpuProfileMu.Unlock()
	f, err := os.Create(filepath.Join(t.cfg.Dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler (e.g. /debug/pprof/profile) holds the CPU
		// profile; drop the file and settle for the heap capture.
		_ = f.Close()
		_ = os.Remove(filepath.Join(t.cfg.Dir, name))
		return err
	}
	time.Sleep(t.cfg.CPUDuration)
	pprof.StopCPUProfile()
	return nil
}

// prune deletes the oldest captures beyond MaxProfiles.
func (t *ProfileTrigger) prune() {
	infos := t.list()
	for i := t.cfg.MaxProfiles; i < len(infos); i++ {
		_ = os.Remove(filepath.Join(t.cfg.Dir, infos[i].Name))
	}
}

// List returns the retained captures, newest first.
func (t *ProfileTrigger) List() []CapturedProfile {
	return t.list()
}

func (t *ProfileTrigger) list() []CapturedProfile {
	entries, err := os.ReadDir(t.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []CapturedProfile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".pprof") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, parseProfileName(name, info.Size(), info.ModTime()))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name > out[j].Name })
	return out
}

// parseProfileName recovers the capture metadata encoded in the
// filename: <unixnano>-<reason>[-<traceid>].<kind>.pprof.
func parseProfileName(name string, size int64, mod time.Time) CapturedProfile {
	p := CapturedProfile{Name: name, Size: size, Time: mod}
	stem := strings.TrimSuffix(name, ".pprof")
	if strings.HasSuffix(stem, ".cpu") {
		p.Kind = "cpu"
		stem = strings.TrimSuffix(stem, ".cpu")
	} else if strings.HasSuffix(stem, ".heap") {
		p.Kind = "heap"
		stem = strings.TrimSuffix(stem, ".heap")
	}
	parts := strings.SplitN(stem, "-", 2)
	if len(parts) == 2 {
		rest := parts[1]
		// A trailing 32-hex segment is the correlated trace ID.
		if i := strings.LastIndexByte(rest, '-'); i >= 0 && len(rest)-i-1 == 32 && isHex(rest[i+1:]) {
			p.TraceID = rest[i+1:]
			rest = rest[:i]
		}
		p.Reason = rest
	}
	return p
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

func sanitizeFileComponent(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Handler serves the capture ring: GET /profiles lists the retained
// captures as JSON; GET /profiles/{name} streams one .pprof file (for
// `go tool pprof http://node:port/profiles/<name>`).
func (t *ProfileTrigger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/profiles"), "/")
		if rest == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Dir      string            `json:"dir"`
				Profiles []CapturedProfile `json:"profiles"`
			}{Dir: t.cfg.Dir, Profiles: t.List()})
			return
		}
		if strings.ContainsAny(rest, "/\\") || !strings.HasSuffix(rest, ".pprof") {
			http.Error(w, "bad profile name", http.StatusBadRequest)
			return
		}
		path := filepath.Join(t.cfg.Dir, rest)
		if _, err := os.Stat(path); err != nil {
			http.Error(w, "profile not retained", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, path)
	})
}
