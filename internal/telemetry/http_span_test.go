package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
)

// traced runs a tiny two-span trace through the collector and returns
// its ID.
func traced(t *testing.T, c *SpanCollector, fail bool) TraceID {
	t.Helper()
	ctx := WithSpanCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "broker.publish")
	root.SetAttr("page", "p1")
	_, child := StartSpan(ctx, "broker.match")
	if fail {
		child.SetError(errors.New("no subscribers"))
	}
	child.End()
	tid := root.Context().TraceID
	root.End()
	return tid
}

func TestAdminServerSpanEndpoints(t *testing.T) {
	spans := NewSpanCollector(CollectorOptions{})
	tid := traced(t, spans, false)
	errTid := traced(t, spans, true)

	s, err := NewAdminServer("127.0.0.1:0", nil, nil, WithSpans(spans))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := adminGet(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var listing struct {
		Stats  CollectorStats `json:"stats"`
		Traces []struct {
			TraceID TraceID `json:"traceId"`
			Root    string  `json:"root"`
			Spans   int     `json:"spans"`
			Err     bool    `json:"err"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(listing.Traces) != 2 {
		t.Fatalf("/traces listed %d traces, want 2", len(listing.Traces))
	}
	if listing.Stats.TracesCompleted != 2 {
		t.Errorf("stats.TracesCompleted = %d", listing.Stats.TracesCompleted)
	}
	var sawErrored bool
	for _, tr := range listing.Traces {
		if tr.Root != "broker.publish" || tr.Spans != 2 {
			t.Errorf("summary %+v", tr)
		}
		if tr.TraceID == errTid && tr.Err {
			sawErrored = true
		}
	}
	if !sawErrored {
		t.Error("errored trace not flagged in /traces")
	}

	code, body = adminGet(t, base+"/trace/"+tid.String())
	if code != http.StatusOK {
		t.Fatalf("/trace/{id} status %d: %s", code, body)
	}
	var td TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatalf("/trace/{id} not JSON: %v", err)
	}
	if td.TraceID != tid || len(td.Spans) != 2 {
		t.Errorf("trace view %+v", td)
	}

	code, body = adminGet(t, base+"/trace/"+tid.String()+"?text=1")
	if code != http.StatusOK || !strings.Contains(string(body), "broker.match") {
		t.Errorf("/trace/{id}?text=1 status %d body %q", code, body)
	}

	code, _ = adminGet(t, base+"/trace/zzzz")
	if code != http.StatusBadRequest {
		t.Errorf("bad trace ID status %d, want 400", code)
	}
	code, _ = adminGet(t, base+"/trace/"+TraceID{9, 9}.String())
	if code != http.StatusNotFound {
		t.Errorf("unknown trace status %d, want 404", code)
	}

	// The exact /trace ring-buffer endpoint must still work beside the
	// /trace/{id} pattern.
	code, _ = adminGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Errorf("/trace status %d", code)
	}
}

func TestAdminServerHealthAndReadiness(t *testing.T) {
	s, err := NewAdminServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := adminGet(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("/healthz status %d body %s", code, body)
	}

	// No checks registered: trivially ready.
	code, _ = adminGet(t, base+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz with no checks status %d", code)
	}

	// Late registration, the broker pattern: journal healthy, uplink down.
	s.RegisterHealthCheck("journal", func() error { return nil })
	s.RegisterHealthCheck("uplink", func() error { return errors.New("uplink hub:7070 disconnected") })
	code, body = adminGet(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing check status %d", code)
	}
	var rep struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/readyz not JSON: %v\n%s", err, body)
	}
	if rep.Status != "not ready" || rep.Checks["journal"] != "ok" || !strings.Contains(rep.Checks["uplink"], "disconnected") {
		t.Errorf("readiness report %+v", rep)
	}

	// Replacing the failing check flips readiness back.
	s.RegisterHealthCheck("uplink", func() error { return nil })
	code, _ = adminGet(t, base+"/readyz")
	if code != http.StatusOK {
		t.Errorf("/readyz after recovery status %d", code)
	}
}

func TestAdminServerWithHealthCheckOption(t *testing.T) {
	s, err := NewAdminServer("127.0.0.1:0", nil, nil,
		WithHealthCheck("static", func() error { return errors.New("never ready") }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, _ := adminGet(t, "http://"+s.Addr()+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("option-registered check ignored: status %d", code)
	}
}
