package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// AdminServer exposes a registry and tracer over HTTP for live
// inspection of a running process:
//
//	/metrics        registry snapshot as JSON (expvar-style)
//	/metrics?text=1 plain-text summary
//	/trace          retained trace events as JSON
//	/trace?page=X   events for one page ID
//	/trace?n=100    at most the last 100 matching events
//	/debug/pprof/   the standard pprof index (profile, heap, goroutine…)
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewAdminServer starts the admin endpoint on addr (e.g.
// "127.0.0.1:6060"; use port 0 for an ephemeral port). reg and tr may
// be nil; the corresponding endpoints then serve empty data.
func NewAdminServer(addr string, reg *Registry, tr *Tracer) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteSummary(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events := tr.DumpPage(r.URL.Query().Get("page"))
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	// pprof must be mounted explicitly: the package's init only touches
	// http.DefaultServeMux, which this server does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &AdminServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener is owned by this server; Serve only fails
			// after Close, so there is nobody to report to.
			_ = err
		}
	}()
	return s, nil
}

// Addr returns the server's listen address.
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *AdminServer) Close() error { return s.srv.Close() }
