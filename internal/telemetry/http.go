package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AdminServer exposes the process's observability surface over HTTP:
//
//	/metrics         registry snapshot as JSON (expvar-style); content
//	                 negotiated: Accept: application/openmetrics-text
//	                 serves OpenMetrics 1.0 with trace-ID exemplars,
//	                 Accept: text/plain serves the Prometheus text
//	                 format, and ?format=json|prometheus|openmetrics
//	                 overrides. Both text flavors include Go runtime
//	                 vitals (go_goroutines, go_heap_alloc_bytes, …).
//	/metrics?text=1  plain-text summary
//	/trace           retained ring-buffer trace events as JSON
//	/trace?page=X    events for one page ID
//	/trace?n=100     at most the last 100 matching events
//	/traces          retained span traces (recent + slowest + errored)
//	/trace/{id}      one span trace rendered as a tree (?text=1 for an
//	                 indented plain-text view with per-stage durations)
//	/healthz         liveness: 200 once the process is up
//	/readyz          readiness: runs the registered health checks,
//	                 503 when any fails
//	/debug/pprof/    the standard pprof index (profile, heap, goroutine…)
//
// Additional surfaces (/fleet, /profiles) are mounted with Handle.
type AdminServer struct {
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	start time.Time

	mu     sync.Mutex
	checks map[string]func() error

	// Readiness flap tracking: lastReady is -1 before the first /readyz
	// evaluation, else 0/1; flaps counts ready<->not-ready transitions.
	lastReady atomic.Int32
	flaps     atomic.Int64
}

// AdminOption configures NewAdminServer beyond the registry and event
// tracer.
type AdminOption func(*adminConfig)

type adminConfig struct {
	spans  *SpanCollector
	checks map[string]func() error
}

// WithSpans serves the collector's span traces on /traces and
// /trace/{id}.
func WithSpans(c *SpanCollector) AdminOption {
	return func(cfg *adminConfig) { cfg.spans = c }
}

// WithHealthCheck registers a named readiness check evaluated by
// /readyz; a nil error means healthy. Checks can also be added after
// startup with RegisterHealthCheck.
func WithHealthCheck(name string, check func() error) AdminOption {
	return func(cfg *adminConfig) {
		if cfg.checks == nil {
			cfg.checks = make(map[string]func() error)
		}
		cfg.checks[name] = check
	}
}

// NewAdminServer starts the admin endpoint on addr (e.g.
// "127.0.0.1:6060"; use port 0 for an ephemeral port). reg and tr may
// be nil; the corresponding endpoints then serve empty data.
func NewAdminServer(addr string, reg *Registry, tr *Tracer, opts ...AdminOption) (*AdminServer, error) {
	var cfg adminConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &AdminServer{
		ln:     ln,
		start:  time.Now(),
		checks: cfg.checks,
	}
	s.lastReady.Store(-1)
	if s.checks == nil {
		s.checks = make(map[string]func() error)
	}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		snap.AddRuntime()
		switch negotiateMetricsFormat(r) {
		case "summary":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteSummary(w)
		case "openmetrics":
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			_ = snap.WriteOpenMetrics(w)
		case "prometheus":
			w.Header().Set("Content-Type", ContentTypePrometheus)
			_ = snap.WritePrometheus(w)
		default:
			writeJSON(w, snap)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events := tr.DumpPage(r.URL.Query().Get("page"))
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		type summary struct {
			TraceID   TraceID       `json:"traceId"`
			Root      string        `json:"root"`
			Start     time.Time     `json:"start"`
			Duration  time.Duration `json:"durationNs"`
			Spans     int           `json:"spans"`
			Err       bool          `json:"err"`
			Truncated bool          `json:"truncated,omitempty"`
		}
		traces := cfg.spans.Traces()
		out := struct {
			Stats  CollectorStats `json:"stats"`
			Traces []summary      `json:"traces"`
		}{Stats: cfg.spans.Stats(), Traces: make([]summary, 0, len(traces))}
		for _, td := range traces {
			out.Traces = append(out.Traces, summary{
				TraceID: td.TraceID, Root: td.Root, Start: td.Start,
				Duration: td.Duration, Spans: len(td.Spans),
				Err: td.Err, Truncated: td.Truncated,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		var tid TraceID
		if err := tid.UnmarshalText([]byte(r.PathValue("id"))); err != nil {
			http.Error(w, "bad trace ID: "+err.Error(), http.StatusBadRequest)
			return
		}
		td, ok := cfg.spans.Trace(tid)
		if !ok {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = td.WriteTree(w)
			return
		}
		writeJSON(w, td)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status": "ok",
			"uptime": time.Since(s.start).String(),
		})
	})
	mux.HandleFunc("/readyz", s.handleReady)
	// pprof must be mounted explicitly: the package's init only touches
	// http.DefaultServeMux, which this server does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener is owned by this server; Serve only fails
			// after Close, so there is nobody to report to.
			_ = err
		}
	}()
	return s, nil
}

// negotiateMetricsFormat picks the /metrics representation: the
// explicit ?format= and legacy ?text=1 overrides win, then the Accept
// header (OpenMetrics preferred over plain text, matching the
// preference order Prometheus scrapers send), defaulting to JSON so
// existing scrapers — including the fleet aggregator — are unaffected.
func negotiateMetricsFormat(r *http.Request) string {
	if r.URL.Query().Get("text") != "" {
		return "summary"
	}
	switch f := r.URL.Query().Get("format"); f {
	case "json", "prometheus", "openmetrics":
		return f
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/openmetrics-text") {
		return "openmetrics"
	}
	if strings.Contains(accept, "text/plain") {
		return "prometheus"
	}
	return "json"
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// RegisterHealthCheck adds (or replaces) a named readiness check after
// startup — components that come up after the admin endpoint (the
// broker's journal, the transport listener, an uplink) register
// themselves here.
func (s *AdminServer) RegisterHealthCheck(name string, check func() error) {
	s.mu.Lock()
	s.checks[name] = check
	s.mu.Unlock()
}

// handleReady runs every registered check and reports per-check status;
// 503 when any check fails.
func (s *AdminServer) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.checks))
	checks := make(map[string]func() error, len(s.checks))
	for name, fn := range s.checks {
		names = append(names, name)
		checks[name] = fn
	}
	s.mu.Unlock()
	sort.Strings(names)
	results := make(map[string]string, len(names))
	ready := true
	for _, name := range names {
		if err := checks[name](); err != nil {
			results[name] = err.Error()
			ready = false
		} else {
			results[name] = "ok"
		}
	}
	// Track ready<->not-ready transitions ("flaps"); a flapping node is
	// the readiness-side trigger for SLO-correlated profile capture.
	now := int32(0)
	if ready {
		now = 1
	}
	if prev := s.lastReady.Swap(now); prev >= 0 && prev != now {
		s.flaps.Add(1)
	}
	status := "ready"
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		status = "not ready"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"status": status, "checks": results})
}

// ReadyTransitions returns how many times /readyz has flipped between
// ready and not ready since startup — the readiness "flap" count
// consumed by the profile-capture trigger.
func (s *AdminServer) ReadyTransitions() int64 { return s.flaps.Load() }

// Handle mounts an additional handler on the admin mux (e.g. the fleet
// aggregator's /fleet endpoints or the profile ring's /profiles). Safe
// to call while the server is running — components that come up after
// the admin endpoint mount themselves here, mirroring
// RegisterHealthCheck.
func (s *AdminServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Addr returns the server's listen address.
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *AdminServer) Close() error { return s.srv.Close() }
