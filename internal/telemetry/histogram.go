package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram over non-negative int64 samples
// (latencies in nanoseconds, sizes in bytes). Buckets are defined by
// ascending upper bounds; a sample lands in the first bucket whose
// bound is >= the sample (inclusive upper bounds). One extra overflow
// bucket catches samples above the largest bound. Observations are a
// single binary-search plus three atomic adds; snapshots read the
// atomics without stopping writers.
type Histogram struct {
	bounds []int64        // ascending upper bounds, immutable after New
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64

	// exemplars holds the most recent traced sample per bucket (nil
	// entries until a traced observation lands there). Written only by
	// ObserveExemplar, so untraced hot paths never touch it.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete traced sample: the
// observed value and the ID of the distributed trace that produced it,
// so a latency bucket on /metrics resolves to a retained span tree on
// /trace/{id}.
type Exemplar struct {
	Bucket  int       `json:"bucket"` // index into Counts
	Value   int64     `json:"value"`
	TraceID TraceID   `json:"traceId"`
	Time    time.Time `json:"time"`
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// Panics on empty or non-ascending bounds — bucket layouts are static
// configuration, so a bad layout is a programming error.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// bucketIndex returns the index of the first bound >= v (binary
// search); len(bounds) is the overflow bucket.
func (h *Histogram) bucketIndex(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records a sample. Negative samples are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	lo := h.bucketIndex(v)
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records a sample and, when tid is non-zero, stores it
// as the bucket's exemplar so the OpenMetrics exposition can link the
// bucket to the retained trace. With a zero tid it is exactly Observe.
func (h *Histogram) ObserveExemplar(v int64, tid TraceID) {
	if v < 0 {
		v = 0
	}
	lo := h.bucketIndex(v)
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if !tid.IsZero() {
		h.exemplars[lo].Store(&Exemplar{Bucket: lo, Value: v, TraceID: tid, Time: time.Now()})
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"` // ascending upper bounds; last bucket is overflow
	Counts []int64 `json:"counts"` // len(Bounds)+1
	// Exemplars holds at most one traced sample per bucket (only
	// buckets that saw a traced observation appear).
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram state. Writers are not stopped, so the
// per-bucket counts may be slightly newer than Count/Sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, *e)
		}
	}
	return s
}

// Mean returns the mean sample, or NaN when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1):
// the upper bound of the bucket containing that rank. Samples in the
// overflow bucket report twice the largest bound. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return 2 * s.Bounds[len(s.Bounds)-1]
		}
	}
	return 2 * s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n ascending bounds starting at start, each
// subsequent bound multiplied by factor (log-scale buckets). start must
// be positive, factor > 1 and n >= 1; panics otherwise, as bucket
// layouts are static configuration.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	bounds := make([]int64, n)
	v := float64(start)
	prev := int64(0)
	for i := 0; i < n; i++ {
		b := int64(math.Round(v))
		if b <= prev { // guard rounding collisions at small scales
			b = prev + 1
		}
		bounds[i] = b
		prev = b
		v *= factor
	}
	return bounds
}

// LatencyBuckets returns the standard log-scale latency layout used
// across the system: 1µs to ~17s in ns, factor 4 (13 buckets).
func LatencyBuckets() []int64 { return ExpBuckets(1_000, 4, 13) }

// SizeBuckets returns the standard log-scale size layout: 64 B to
// ~1 GiB, factor 4 (13 buckets).
func SizeBuckets() []int64 { return ExpBuckets(64, 4, 13) }

// CountBuckets returns a log-scale layout for small cardinalities
// (fan-out counts and the like): 1 to ~4096, factor 2 (13 buckets).
func CountBuckets() []int64 { return ExpBuckets(1, 2, 13) }
