package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Zipf models a Zipf popularity distribution over n ranked items: the
// probability of the item with rank i (1-based) is proportional to
// 1/i^alpha. The paper uses alpha = 1.5 for the NEWS trace and alpha = 1.0
// for ALTERNATIVE (§4.2).
type Zipf struct {
	alpha float64
	// cum[i] is the cumulative probability of ranks 1..i+1.
	cum []float64
}

// NewZipf builds a Zipf distribution over n items with homogeneity
// parameter alpha. n must be positive and alpha non-negative.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: n must be positive, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("zipf: alpha must be non-negative, got %g", alpha)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += rankWeight(i+1, alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{alpha: alpha, cum: cum}, nil
}

func rankWeight(rank int, alpha float64) float64 {
	return 1 / math.Pow(float64(rank), alpha)
}

// N returns the number of ranked items.
func (z *Zipf) N() int { return len(z.cum) }

// Alpha returns the homogeneity parameter.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Prob returns the probability of the item with 1-based rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 1 || rank > len(z.cum) {
		return 0
	}
	if rank == 1 {
		return z.cum[0]
	}
	return z.cum[rank-1] - z.cum[rank-2]
}

// Rank samples a 1-based rank using g.
func (z *Zipf) Rank(g *RNG) int {
	u := g.Float64()
	// cum is sorted ascending; find the first index with cum >= u.
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i + 1
}

// Counts deterministically apportions total samples to ranks in proportion
// to the Zipf probabilities, using largest-remainder rounding so that the
// counts sum exactly to total and never invert the rank order.
func (z *Zipf) Counts(total int) ([]int, error) {
	if total < 0 {
		return nil, errors.New("zipf: total must be non-negative")
	}
	n := len(z.cum)
	counts := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i := 0; i < n; i++ {
		exact := z.Prob(i+1) * float64(total)
		whole := int(exact)
		counts[i] = whole
		assigned += whole
		rems[i] = rem{idx: i, frac: exact - float64(whole)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		counts[rems[i%n].idx]++
		assigned++
	}
	return counts, nil
}
