package stats

import (
	"fmt"
	"math"
	"sort"
)

// LogNormal is a log-normal distribution with parameters mu and sigma of
// the underlying normal. The paper generates page sizes with mu = 9.357 and
// sigma = 1.318 (footnote 1 of §4.1, from Barford & Crovella).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// PaperPageSizes is the log-normal page-size distribution the paper uses.
var PaperPageSizes = LogNormal{Mu: 9.357, Sigma: 1.318}

// Sample draws one value.
func (ln LogNormal) Sample(g *RNG) float64 {
	return math.Exp(ln.Mu + ln.Sigma*g.NormFloat64())
}

// SampleBytes draws a page size in whole bytes, at least 1.
func (ln LogNormal) SampleBytes(g *RNG) int64 {
	v := int64(math.Round(ln.Sample(g)))
	if v < 1 {
		v = 1
	}
	return v
}

// Mean returns the analytic mean exp(mu + sigma^2/2).
func (ln LogNormal) Mean() float64 {
	return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2)
}

// Median returns the analytic median exp(mu).
func (ln LogNormal) Median() float64 { return math.Exp(ln.Mu) }

// StepWise is a piecewise-uniform distribution over half-open intervals:
// with probability Weights[i] a sample is drawn uniformly from
// [Bounds[i], Bounds[i+1]). The paper's modification intervals use
// 5 % in (0, 1h), 90 % in [1h, 1d), 5 % in [1d, 7d) (§4.1).
type StepWise struct {
	// Bounds has len(Weights)+1 ascending entries.
	Bounds []float64
	// Weights sum to 1 (normalised by NewStepWise).
	Weights []float64
	cum     []float64
}

// NewStepWise builds a step-wise distribution. bounds must be strictly
// ascending with exactly one more entry than weights; weights must be
// non-negative with a positive sum (they are normalised).
func NewStepWise(bounds, weights []float64) (*StepWise, error) {
	if len(bounds) != len(weights)+1 {
		return nil, fmt.Errorf("stepwise: need len(bounds) == len(weights)+1, got %d and %d", len(bounds), len(weights))
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("stepwise: need at least one interval")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stepwise: negative weight %g at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stepwise: weights sum to %g, need > 0", total)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stepwise: bounds must be strictly ascending at index %d", i)
		}
	}
	sw := &StepWise{
		Bounds:  append([]float64(nil), bounds...),
		Weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		sw.Weights[i] = w / total
		run += w / total
		sw.cum[i] = run
	}
	sw.cum[len(sw.cum)-1] = 1
	return sw, nil
}

// Sample draws one value.
func (sw *StepWise) Sample(g *RNG) float64 {
	u := g.Float64()
	i := sort.SearchFloat64s(sw.cum, u)
	if i >= len(sw.Weights) {
		i = len(sw.Weights) - 1
	}
	return g.UniformRange(sw.Bounds[i], sw.Bounds[i+1])
}

// Pareto is a bounded Pareto-style age distribution used to place request
// times after a page's publication: the density decays as age^-(gamma+1),
// truncated to [Xm, Max]. A larger gamma concentrates samples near Xm
// (fresh pages); gamma near zero spreads them toward Max.
type Pareto struct {
	Xm    float64 // scale (minimum age), > 0
	Gamma float64 // shape, > 0
	Max   float64 // truncation bound, > Xm
}

// Lomax is a shifted Pareto distribution on [0, Max]: the density is
// proportional to (1 + x/Scale)^-(Gamma+1), so it is finite at zero and
// decays as a power law. The workload uses it for request ages: requests
// can arrive immediately after publication, most arrive within a few
// Scale units, and a Gamma-controlled tail keeps old pages referenced.
type Lomax struct {
	Scale float64 // > 0
	Gamma float64 // shape, > 0
	Max   float64 // truncation bound, > 0
}

// Median returns the analytic median of the untruncated distribution.
func (l Lomax) Median() float64 {
	return l.Scale * (math.Pow(2, 1/l.Gamma) - 1)
}

// Sample draws a truncated Lomax variate in [0, Max] by inversion.
func (l Lomax) Sample(g *RNG) float64 {
	// Untruncated CDF: F(x) = 1 - (1 + x/s)^-g. Truncate to [0, Max].
	fMax := 1 - math.Pow(1+l.Max/l.Scale, -l.Gamma)
	u := g.Float64() * fMax
	x := l.Scale * (math.Pow(1-u, -1/l.Gamma) - 1)
	if x > l.Max {
		x = l.Max
	}
	if x < 0 {
		x = 0
	}
	return x
}

// Sample draws a truncated Pareto variate in [Xm, Max] by inversion.
func (p Pareto) Sample(g *RNG) float64 {
	// CDF on [Xm, Max]: F(x) = (1-(Xm/x)^g) / (1-(Xm/Max)^g).
	u := g.Float64()
	denom := 1 - math.Pow(p.Xm/p.Max, p.Gamma)
	x := p.Xm / math.Pow(1-u*denom, 1/p.Gamma)
	if x > p.Max {
		x = p.Max
	}
	if x < p.Xm {
		x = p.Xm
	}
	return x
}
