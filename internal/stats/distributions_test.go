package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogNormalMoments(t *testing.T) {
	ln := LogNormal{Mu: 2, Sigma: 0.5}
	g := NewRNG(7)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += ln.Sample(g)
	}
	mean := sum / n
	want := ln.Mean()
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("empirical mean %g, analytic %g", mean, want)
	}
}

func TestLogNormalPaperParameters(t *testing.T) {
	// The paper's page sizes: mu=9.357, sigma=1.318 => median ~11.6 KB.
	med := PaperPageSizes.Median()
	if med < 10000 || med > 13000 {
		t.Errorf("paper page-size median %g outside plausible ~11.6KB window", med)
	}
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if b := PaperPageSizes.SampleBytes(g); b < 1 {
			t.Fatalf("SampleBytes returned %d < 1", b)
		}
	}
}

func TestNewStepWiseValidation(t *testing.T) {
	tests := []struct {
		name    string
		bounds  []float64
		weights []float64
		ok      bool
	}{
		{"valid", []float64{0, 1, 2}, []float64{0.5, 0.5}, true},
		{"mismatched lengths", []float64{0, 1}, []float64{0.5, 0.5}, false},
		{"empty", []float64{0}, nil, false},
		{"descending bounds", []float64{0, 2, 1}, []float64{0.5, 0.5}, false},
		{"equal bounds", []float64{0, 1, 1}, []float64{0.5, 0.5}, false},
		{"negative weight", []float64{0, 1, 2}, []float64{-1, 2}, false},
		{"zero weights", []float64{0, 1, 2}, []float64{0, 0}, false},
		{"unnormalised ok", []float64{0, 1, 2}, []float64{3, 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewStepWise(tt.bounds, tt.weights)
			if tt.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestStepWiseNormalisesWeights(t *testing.T) {
	sw, err := NewStepWise([]float64{0, 1, 2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sw.Weights[0]-0.75) > 1e-12 || math.Abs(sw.Weights[1]-0.25) > 1e-12 {
		t.Errorf("weights = %v, want [0.75 0.25]", sw.Weights)
	}
}

func TestStepWiseSamplesInBoundsAndProportioned(t *testing.T) {
	// The paper's modification-interval distribution: 5% < 1h, 90% in
	// [1h,1d), 5% in [1d,7d).
	hour := 3600.0
	day := 24 * hour
	sw, err := NewStepWise([]float64{60, hour, day, 7 * day}, []float64{0.05, 0.90, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(99)
	const n = 100000
	var lo, mid, hi int
	for i := 0; i < n; i++ {
		v := sw.Sample(g)
		if v < 60 || v >= 7*day {
			t.Fatalf("sample %g outside [60, 7d)", v)
		}
		switch {
		case v < hour:
			lo++
		case v < day:
			mid++
		default:
			hi++
		}
	}
	checkFrac := func(name string, got int, want float64) {
		f := float64(got) / n
		if math.Abs(f-want) > 0.01 {
			t.Errorf("%s fraction %g, want %g", name, f, want)
		}
	}
	checkFrac("lo", lo, 0.05)
	checkFrac("mid", mid, 0.90)
	checkFrac("hi", hi, 0.05)
}

func TestParetoSampleBounds(t *testing.T) {
	p := Pareto{Xm: 1, Gamma: 1.2, Max: 100}
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := p.Sample(g)
		if v < p.Xm || v > p.Max {
			t.Fatalf("sample %g outside [%g, %g]", v, p.Xm, p.Max)
		}
	}
}

func TestParetoGammaControlsDecay(t *testing.T) {
	// Higher gamma concentrates mass near Xm.
	g := NewRNG(11)
	steep := Pareto{Xm: 1, Gamma: 3, Max: 1000}
	flat := Pareto{Xm: 1, Gamma: 0.3, Max: 1000}
	const n = 50000
	var steepNear, flatNear int
	for i := 0; i < n; i++ {
		if steep.Sample(g) < 2 {
			steepNear++
		}
		if flat.Sample(g) < 2 {
			flatNear++
		}
	}
	if steepNear <= flatNear {
		t.Errorf("steep gamma should concentrate near Xm: steep=%d flat=%d", steepNear, flatNear)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(123)
	a := g.Split("publishing")
	g2 := NewRNG(123)
	b := g2.Split("requests")
	// Different labels from the same master state yield different streams.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("split streams look correlated: %d/100 equal draws", same)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(77).Split("x")
	b := NewRNG(77).Split("x")
	for i := 0; i < 100; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("same seed+label diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestUniformRangeProperty(t *testing.T) {
	g := NewRNG(3)
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw)
		span := float64(spanRaw) + 1
		v := g.UniformRange(lo, lo+span)
		return v >= lo && v < lo+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
