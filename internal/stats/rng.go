// Package stats provides the random-number and distribution substrate used
// by the workload generators and the topology builder: a splittable seeded
// RNG, Zipf and log-normal samplers, the step-wise interval distribution
// from the paper's publishing model, and summary statistics.
//
// Everything in this package is deterministic given a seed, so simulation
// experiments are exactly reproducible.
package stats

import (
	"math/rand"
)

// RNG is a seeded source of randomness. It wraps math/rand.Rand so that
// every component of the simulator can own an independent, reproducible
// stream derived from a master seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent RNG from this one, keyed by label. Two
// Splits with different labels yield different streams; the same label on
// an RNG in the same state yields the same stream.
func (g *RNG) Split(label string) *RNG {
	var h int64 = 1469598103934665603 // FNV-1a offset basis (truncated)
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// UniformRange returns a uniform float64 in [lo, hi).
func (g *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}
