package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Min != 5 || s.Max != 5 || s.Mean != 5 || s.Median != 5 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
	if s.StdDev != 0 {
		t.Errorf("single-element stddev = %g, want 0", s.StdDev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %g, want %g", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Summarize mutated its input: %v", xs)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); got != tt.want {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g, want 0", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	// Property: Min <= Median <= Max and Min <= Mean <= Max.
	f := func(raw []int32) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			xs = append(xs, float64(x))
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int32, q1Raw, q2Raw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			xs = append(xs, float64(x))
		}
		sort.Float64s(xs)
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
