package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a float64 sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It returns 0 for an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
