package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZipfValidation(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		alpha float64
		ok    bool
	}{
		{"valid", 10, 1.0, true},
		{"zero n", 0, 1.0, false},
		{"negative n", -3, 1.0, false},
		{"negative alpha", 5, -0.5, false},
		{"zero alpha uniform", 5, 0, true},
		{"news alpha", 100, 1.5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			z, err := NewZipf(tt.n, tt.alpha)
			if tt.ok && err != nil {
				t.Fatalf("NewZipf(%d, %g) unexpected error: %v", tt.n, tt.alpha, err)
			}
			if !tt.ok {
				if err == nil {
					t.Fatalf("NewZipf(%d, %g) expected error", tt.n, tt.alpha)
				}
				return
			}
			if z.N() != tt.n {
				t.Errorf("N() = %d, want %d", z.N(), tt.n)
			}
			if z.Alpha() != tt.alpha {
				t.Errorf("Alpha() = %g, want %g", z.Alpha(), tt.alpha)
			}
		})
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.8, 1.0, 1.5} {
		z, err := NewZipf(500, alpha)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for r := 1; r <= 500; r++ {
			sum += z.Prob(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%g: probabilities sum to %g, want 1", alpha, sum)
		}
	}
}

func TestZipfProbMonotoneInRank(t *testing.T) {
	z, err := NewZipf(1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for r := 2; r <= 1000; r++ {
		if z.Prob(r) > z.Prob(r-1)+1e-15 {
			t.Fatalf("Prob(%d)=%g > Prob(%d)=%g; Zipf must be non-increasing in rank", r, z.Prob(r), r-1, z.Prob(r-1))
		}
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z, err := NewZipf(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.Prob(0); got != 0 {
		t.Errorf("Prob(0) = %g, want 0", got)
	}
	if got := z.Prob(11); got != 0 {
		t.Errorf("Prob(11) = %g, want 0", got)
	}
}

func TestZipfRatioMatchesAlpha(t *testing.T) {
	// P(1)/P(2) must be 2^alpha.
	for _, alpha := range []float64{1.0, 1.5} {
		z, err := NewZipf(100, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ratio := z.Prob(1) / z.Prob(2)
		want := math.Pow(2, alpha)
		if math.Abs(ratio-want) > 1e-9 {
			t.Errorf("alpha=%g: P(1)/P(2) = %g, want %g", alpha, ratio, want)
		}
	}
}

func TestZipfRankSamplingDistribution(t *testing.T) {
	z, err := NewZipf(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(42)
	const n = 200000
	counts := make([]int, 51)
	for i := 0; i < n; i++ {
		r := z.Rank(g)
		if r < 1 || r > 50 {
			t.Fatalf("Rank returned %d, out of [1, 50]", r)
		}
		counts[r]++
	}
	// Rank 1 empirical frequency should be close to the analytic value.
	want := z.Prob(1)
	got := float64(counts[1]) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical P(rank=1) = %g, analytic %g", got, want)
	}
}

func TestZipfCountsExactTotal(t *testing.T) {
	z, err := NewZipf(77, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int{0, 1, 10, 1234, 195000} {
		counts, err := z.Counts(total)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != total {
			t.Errorf("Counts(%d) sums to %d", total, sum)
		}
	}
	if _, err := z.Counts(-1); err == nil {
		t.Error("Counts(-1) should error")
	}
}

func TestZipfCountsPreserveRankOrder(t *testing.T) {
	z, err := NewZipf(200, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := z.Counts(100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1]+1 {
			t.Fatalf("counts[%d]=%d exceeds counts[%d]=%d by more than rounding", i, counts[i], i-1, counts[i-1])
		}
	}
}

func TestZipfCountsProperty(t *testing.T) {
	// Property: for any valid total, the counts sum exactly to the total.
	z, err := NewZipf(30, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(totalRaw uint16) bool {
		total := int(totalRaw)
		counts, err := z.Counts(total)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
